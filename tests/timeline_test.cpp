// RoundTimeline tests: the round-level gossip profiler must reproduce the
// paper's accounting on a fault-free ConcurrentUpDown run (exactly n + r
// send rounds — Theorem 1 — with every send classified into the §3.2
// taxonomy and every delivery given an up/down direction), attribute fault
// losses to their rounds, and export a timeline JSON that round-trips
// through the shared test parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "gossip/solve.h"
#include "gossip/timeline.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "json_parser.h"
#include "sim/network_sim.h"

namespace mg::gossip {
namespace {

using testjson::JsonValue;
using testjson::Parser;

/// Solve + simulate with the timeline attached; returns the sim result.
sim::SimResult run_with_timeline(const Solution& sol, RoundTimeline& timeline,
                                 const sim::SimOptions& base = {}) {
  sim::SimOptions options = base;
  options.sink = &timeline;
  return sim::simulate(sol.instance.tree().as_graph(), sol.schedule,
                       sol.instance.initial(), options);
}

TEST(Timeline, PetersenConcurrentUpDownMatchesTheorem1) {
  const auto sol =
      solve_gossip(graph::petersen(), Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(sol.report.ok);
  RoundTimeline timeline(sol.instance);
  const sim::SimResult run = run_with_timeline(sol, timeline);
  EXPECT_TRUE(run.completed);

  const std::size_t n = sol.instance.vertex_count();
  const std::size_t r = sol.instance.radius();
  EXPECT_EQ(timeline.send_rounds(), n + r);  // Theorem 1: exactly n + r

  RoundTally totals;
  for (const RoundTally& tally : timeline.rounds()) {
    totals.sends += tally.sends;
    totals.receives += tally.receives;
    totals.s_sends += tally.s_sends;
    totals.l_sends += tally.l_sends;
    totals.r_sends += tally.r_sends;
    totals.o_sends += tally.o_sends;
    totals.up += tally.up;
    totals.down += tally.down;
    totals.drops += tally.drops + tally.crashed + tally.skipped + tally.lost;
  }
  // Fault-free: every scheduled transmission is sent and delivered.
  EXPECT_EQ(totals.sends, sol.schedule.transmission_count());
  EXPECT_EQ(totals.receives, sol.schedule.delivery_count());
  EXPECT_EQ(totals.drops, 0u);
  // The s/l/r/o classes partition the sends (§3.2).
  EXPECT_EQ(totals.s_sends + totals.l_sends + totals.r_sends + totals.o_sends,
            totals.sends);
  EXPECT_GT(totals.s_sends, 0u);
  // On a tree, every delivery moves up or down.
  EXPECT_EQ(totals.up + totals.down, totals.receives);
  EXPECT_GT(totals.up, 0u);
  EXPECT_GT(totals.down, 0u);

  // The whole point of ConcurrentUpDown: up and down phases overlap.
  const RoundTimeline::PhaseOverlap overlap = timeline.phase_overlap();
  EXPECT_GT(overlap.overlap_rounds, 0u);
  EXPECT_LE(overlap.overlap_rounds, overlap.up_rounds);
  EXPECT_LE(overlap.overlap_rounds, overlap.down_rounds);
  EXPECT_LE(overlap.total_rounds, timeline.rounds().size());

  // Activity grid: a send round flags at least one sender cell.
  bool any_send_cell = false;
  for (Vertex v = 0; v < timeline.processor_count(); ++v) {
    any_send_cell = any_send_cell ||
                    (timeline.activity(0, v) & kActivitySend) != 0;
  }
  EXPECT_TRUE(any_send_cell);
  EXPECT_EQ(timeline.activity(10'000, 0), 0u);  // out of range reads as idle
}

TEST(Timeline, InjectedDropIsAttributedToItsRound) {
  const auto sol = solve_gossip(graph::cycle(8), Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(sol.report.ok);

  // Find a transmission to kill: round 1's first sender.
  const auto& round1 = sol.schedule.round(1);
  ASSERT_FALSE(round1.empty());
  const Vertex victim = round1.front().sender;

  RoundTimeline timeline(sol.instance);
  sim::SimOptions options;
  options.drop.emplace_back(1, victim);
  const sim::SimResult run = run_with_timeline(sol, timeline, options);
  EXPECT_GE(run.injected_drops, 1u);

  std::uint64_t drops = 0;
  for (const RoundTally& tally : timeline.rounds()) drops += tally.drops;
  EXPECT_EQ(drops, run.injected_drops);
  EXPECT_GE(timeline.rounds()[1].drops, 1u);
  EXPECT_NE(timeline.activity(1, victim) & kActivityFault, 0);
  // The cascade (skipped sends downstream of the drop) is tallied too.
  std::uint64_t skipped = 0;
  for (const RoundTally& tally : timeline.rounds()) skipped += tally.skipped;
  EXPECT_EQ(skipped, run.skipped_sends);
  // Suppressed transmissions still count toward the round span.
  EXPECT_EQ(timeline.send_rounds(),
            sol.instance.vertex_count() + sol.instance.radius());
}

TEST(Timeline, JsonExportRoundTrips) {
  const auto sol =
      solve_gossip(graph::petersen(), Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(sol.report.ok);
  RoundTimeline timeline(sol.instance);
  (void)run_with_timeline(sol, timeline);

  std::ostringstream out;
  timeline.write_json(out);
  const JsonValue doc = Parser(out.str()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.at("schema_version").as_u64(), 1u);
  EXPECT_EQ(doc.at("n").as_u64(), sol.instance.vertex_count());
  EXPECT_EQ(doc.at("send_rounds").as_u64(),
            sol.instance.vertex_count() + sol.instance.radius());
  EXPECT_EQ(doc.at("totals").at("sends").as_u64(),
            sol.schedule.transmission_count());
  EXPECT_EQ(doc.at("totals").at("receives").as_u64(),
            sol.schedule.delivery_count());
  EXPECT_EQ(doc.at("totals").at("drops").as_u64(), 0u);
  EXPECT_GT(doc.at("overlap").at("overlap_rounds").as_u64(), 0u);

  const JsonValue& rounds = doc.at("rounds");
  ASSERT_EQ(rounds.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(rounds.array.size(), doc.at("time_units").as_u64());
  std::uint64_t sends = 0;
  for (std::size_t t = 0; t < rounds.array.size(); ++t) {
    const JsonValue& row = rounds.array[t];
    EXPECT_EQ(row.at("t").as_u64(), t);
    const JsonValue& classes = row.at("classes");
    EXPECT_EQ(classes.at("s").as_u64() + classes.at("l").as_u64() +
                  classes.at("r").as_u64() + classes.at("o").as_u64(),
              row.at("sends").as_u64());
    EXPECT_EQ(row.at("up").as_u64() + row.at("down").as_u64(),
              row.at("receives").as_u64());
    EXPECT_EQ(row.at("faults").at("drops").as_u64(), 0u);
    sends += row.at("sends").as_u64();
  }
  EXPECT_EQ(sends, doc.at("totals").at("sends").as_u64());
}

TEST(Timeline, LipRipPartitionBodySends) {
  // lip/rip classify a non-root sender's own-subtree (body) messages; the
  // two kinds never exceed the body sends and at least one lip send must
  // exist in any multi-vertex run (every non-root start message is one).
  const auto sol = solve_gossip(graph::grid(3, 3),
                                Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(sol.report.ok);
  RoundTimeline timeline(sol.instance);
  (void)run_with_timeline(sol, timeline);

  std::uint64_t lip = 0;
  std::uint64_t rip = 0;
  std::uint64_t own = 0;
  for (const RoundTally& tally : timeline.rounds()) {
    lip += tally.lip_sends;
    rip += tally.rip_sends;
    own += tally.s_sends + tally.l_sends + tally.r_sends;
  }
  EXPECT_GT(lip, 0u);
  EXPECT_LE(lip + rip, own);
}

}  // namespace
}  // namespace mg::gossip
