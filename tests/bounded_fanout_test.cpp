// Tests for the k-port bounded-fanout gossip: the telephone/multicast
// interpolation.
#include <gtest/gtest.h>

#include "gossip/bounded_fanout.h"
#include "gossip/telephone.h"
#include "gossip/updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "test_util.h"

namespace mg::gossip {
namespace {

TEST(BoundedFanout, CapOneEqualsTelephone) {
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(7));
    EXPECT_TRUE(model::equivalent(bounded_fanout_gossip(instance, 1),
                                  telephone_gossip(instance)))
        << family.name;
  }
}

TEST(BoundedFanout, UnboundedEqualsUpDown) {
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(7));
    EXPECT_TRUE(model::equivalent(
        bounded_fanout_gossip(instance, kUnboundedFanout),
        updown_gossip(instance)))
        << family.name;
  }
}

TEST(BoundedFanout, ValidForEveryCap) {
  const auto instance = Instance::from_network(graph::star(12));
  for (graph::Vertex cap = 1; cap <= 12; ++cap) {
    const auto schedule = bounded_fanout_gossip(instance, cap);
    const auto report = test::expect_valid_gossip(instance, schedule);
    ASSERT_TRUE(report.ok) << "cap=" << cap << ": " << report.error;
    EXPECT_LE(schedule.max_fanout(), cap) << "cap=" << cap;
  }
}

TEST(BoundedFanout, MonotoneInCap) {
  // More ports never hurt: total time is non-increasing in the cap.
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(8));
    std::size_t previous = SIZE_MAX;
    for (graph::Vertex cap : {1u, 2u, 4u, 8u, kUnboundedFanout}) {
      const auto time = bounded_fanout_gossip(instance, cap).total_time();
      EXPECT_LE(time, previous) << family.name << " cap=" << cap;
      previous = time;
    }
  }
}

TEST(BoundedFanout, StarSaturationPoint) {
  // On a star the hub relays (n-1) o-message batches per leaf set; cap c
  // divides the down load by ~c, so doubling the cap should roughly halve
  // the time until the n - 1 floor is reached.
  const auto instance = Instance::from_network(graph::star(17));
  const auto cap1 = bounded_fanout_gossip(instance, 1).total_time();
  const auto cap4 = bounded_fanout_gossip(instance, 4).total_time();
  const auto cap16 = bounded_fanout_gossip(instance, 16).total_time();
  EXPECT_GT(cap1, 3 * cap4 / 2);
  EXPECT_GT(cap4, cap16);
  EXPECT_GE(cap16, 16u);  // trivial bound
}

TEST(BoundedFanout, CapZeroRejected) {
  const auto instance = Instance::from_network(graph::path(4));
  EXPECT_THROW((void)bounded_fanout_gossip(instance, 0), ContractViolation);
}

TEST(BoundedFanout, ChainInsensitiveToCap) {
  // A chain rooted at its end has one child per vertex, so every downward
  // relay is unicast regardless of the cap: identical schedules.
  const Instance instance(tree::root_tree_graph(graph::path(15), 0));
  EXPECT_TRUE(model::equivalent(
      bounded_fanout_gossip(instance, 1),
      bounded_fanout_gossip(instance, kUnboundedFanout)));
}

}  // namespace
}  // namespace mg::gossip
