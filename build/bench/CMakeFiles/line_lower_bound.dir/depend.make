# Empty dependencies file for line_lower_bound.
# This may be replaced when dependencies are built.
