// Extension bench: the paper's algorithm on the interconnection networks
// the prior gossiping literature specialized in ([7], [17], [20]: de
// Bruijn, Kautz, shuffle-exchange, cube-connected cycles, butterflies,
// chordal rings).  §2: "The algorithm for the gossiping problem in this
// paper works for any arbitrary network" — one generic n + r bound where
// earlier work needed one algorithm per topology.
#include <cstdio>

#include "gossip/bounds.h"
#include "gossip/solve.h"
#include "graph/interconnect.h"
#include "graph/properties.h"
#include "support/table.h"

int main() {
  using namespace mg;
  const std::vector<graph::Vertex> circulant_offsets{1, 4};
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"de Bruijn B(2,5)", graph::de_bruijn(5)},
      {"de Bruijn B(2,7)", graph::de_bruijn(7)},
      {"Kautz K(2,4)", graph::kautz(4)},
      {"Kautz K(2,6)", graph::kautz(6)},
      {"shuffle-exchange 5", graph::shuffle_exchange(5)},
      {"shuffle-exchange 7", graph::shuffle_exchange(7)},
      {"CCC(3)", graph::cube_connected_cycles(3)},
      {"CCC(4)", graph::cube_connected_cycles(4)},
      {"wrapped butterfly 3", graph::wrapped_butterfly(3)},
      {"wrapped butterfly 4", graph::wrapped_butterfly(4)},
      {"circulant C32(1,4)", graph::circulant(32, circulant_offsets)},
      {"chordal ring (64,9)", graph::chordal_ring(64, 9)},
  };

  TextTable table;
  table.new_row();
  for (const char* h : {"network", "n", "m", "degree", "radius", "diameter",
                        "gossip rounds", "n+r", "ratio vs n-1"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto metrics = graph::compute_metrics(g);
    const auto stats = graph::degree_stats(g);
    const auto sol = gossip::solve_gossip(g);
    all_ok = all_ok && sol.report.ok &&
             sol.schedule.total_time() ==
                 g.vertex_count() + metrics.radius;

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(g.edge_count());
    table.cell(static_cast<std::size_t>(stats.max));
    table.cell(static_cast<std::size_t>(metrics.radius));
    table.cell(static_cast<std::size_t>(metrics.diameter));
    table.cell(sol.schedule.total_time());
    table.cell(gossip::concurrent_updown_time(g.vertex_count(),
                                              metrics.radius));
    table.cell(static_cast<double>(sol.schedule.total_time()) /
                   static_cast<double>(
                       gossip::trivial_lower_bound(g.vertex_count())),
               3);
  }

  std::printf(
      "ConcurrentUpDown across classic interconnection networks\n"
      "(one generic algorithm; time always exactly n + radius):\n\n%s\n"
      "all valid and equal to n + r: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
