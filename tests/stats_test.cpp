// Tests for schedule-anatomy statistics.
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/stats.h"

namespace mg::model {
namespace {

TEST(Stats, EmptySchedule) {
  const auto stats = compute_stats(5, Schedule());
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.transmissions, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_fanout, 0.0);
  EXPECT_DOUBLE_EQ(stats.receive_utilization, 0.0);
}

TEST(Stats, HandBuiltCounts) {
  Schedule s;
  s.add(0, {0, 0, {1, 2}});
  s.add(1, {1, 1, {0}});
  const auto stats = compute_stats(3, s);
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.transmissions, 2u);
  EXPECT_EQ(stats.deliveries, 3u);
  EXPECT_EQ(stats.max_fanout, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_fanout, 1.5);
  EXPECT_EQ(stats.sends_per_processor, (std::vector<std::size_t>{1, 1, 0}));
  EXPECT_EQ(stats.receives_per_processor,
            (std::vector<std::size_t>{1, 1, 1}));
  ASSERT_EQ(stats.per_round.size(), 2u);
  EXPECT_EQ(stats.per_round[0].senders, 1u);
  EXPECT_EQ(stats.per_round[0].deliveries, 2u);
  // Utilization: 3 deliveries / (3 processors * 2 rounds).
  EXPECT_DOUBLE_EQ(stats.receive_utilization, 0.5);
  ASSERT_GE(stats.fanout_histogram.size(), 3u);
  EXPECT_EQ(stats.fanout_histogram[1], 1u);
  EXPECT_EQ(stats.fanout_histogram[2], 1u);
}

TEST(Stats, GossipReceiveCountsAreExact) {
  // In a complete gossip every processor receives exactly n - 1 NEW
  // messages; ConcurrentUpDown delivers no duplicates to a vertex except
  // b-messages going down (skipped), so receive counts equal n - 1.
  const auto sol = gossip::solve_gossip(graph::fig4_network());
  const auto stats =
      compute_stats(sol.instance.vertex_count(), sol.schedule);
  for (graph::Vertex v = 0; v < 16; ++v) {
    EXPECT_EQ(stats.receives_per_processor[v], 15u) << v;
  }
}

TEST(Stats, ReceiveUtilizationBelowOne) {
  const auto sol = gossip::solve_gossip(graph::grid(4, 5));
  const auto stats =
      compute_stats(sol.instance.vertex_count(), sol.schedule);
  EXPECT_GT(stats.receive_utilization, 0.0);
  EXPECT_LE(stats.receive_utilization, 1.0);
  EXPECT_LE(stats.send_utilization, 1.0);
}

TEST(Stats, StarGossipFanout) {
  const auto sol = gossip::solve_gossip(graph::star(9));
  const auto stats = compute_stats(9, sol.schedule);
  EXPECT_EQ(stats.max_fanout, 8u);
  // The root's multicasts dominate: mean fanout well above 1.
  EXPECT_GT(stats.mean_fanout, 2.0);
}

TEST(Stats, PerRoundRowsCoverEveryRound) {
  const auto sol = gossip::solve_gossip(graph::path(9));
  const auto stats = compute_stats(9, sol.schedule);
  EXPECT_EQ(stats.per_round.size(), sol.schedule.round_count());
  std::size_t total = 0;
  for (const auto& round : stats.per_round) total += round.deliveries;
  EXPECT_EQ(total, stats.deliveries);
}

}  // namespace
}  // namespace mg::model
