# Empty compiler generated dependencies file for weighted_gossip_bench.
# This may be replaced when dependencies are built.
