// Tests for §4 weighted gossiping via chain splitting.
#include <gtest/gtest.h>

#include <numeric>

#include "gossip/weighted.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace mg::gossip {
namespace {

TEST(Weighted, UnitWeightsReduceToPlainGossip) {
  const auto g = graph::fig4_network();
  const auto result = weighted_gossip(g, std::vector<std::uint32_t>(16, 1));
  EXPECT_EQ(result.total_messages, 16u);
  EXPECT_EQ(result.virtual_radius, 3u);
  EXPECT_EQ(result.schedule.total_time(), 19u);  // n + r unchanged
  EXPECT_EQ(result.max_external_receives, 1u);
  EXPECT_EQ(result.max_external_sends, 1u);
}

TEST(Weighted, TotalTimeIsNVirtualPlusRVirtual) {
  Rng rng(5);
  const auto g = graph::grid(3, 4);
  std::vector<std::uint32_t> weights(12);
  for (auto& w : weights) w = 1 + static_cast<std::uint32_t>(rng.below(4));
  const auto result = weighted_gossip(g, weights);
  const auto total =
      std::accumulate(weights.begin(), weights.end(), std::size_t{0});
  EXPECT_EQ(result.total_messages, total);
  EXPECT_EQ(result.schedule.total_time(), total + result.virtual_radius);
}

TEST(Weighted, VirtualScheduleValidatesOnVirtualTree) {
  Rng rng(8);
  const auto g = graph::cycle(7);
  std::vector<std::uint32_t> weights(7);
  for (auto& w : weights) w = 1 + static_cast<std::uint32_t>(rng.below(3));
  const auto result = weighted_gossip(g, weights);
  const auto report = model::validate_schedule(
      result.virtual_instance.tree().as_graph(), result.schedule,
      result.virtual_instance.initial());
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(Weighted, RealOfMapsChainsToOwners) {
  const auto g = graph::path(3);
  const auto result = weighted_gossip(g, {2, 3, 1});
  ASSERT_EQ(result.real_of.size(), 6u);
  std::vector<std::size_t> counts(3, 0);
  for (graph::Vertex r : result.real_of) ++counts[r];
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Weighted, ChainExtendsRadius) {
  // Splitting the center of a star into a chain of 4 deepens the virtual
  // tree by the chain length.
  const auto g = graph::star(5);
  const auto unit = weighted_gossip(g, {1, 1, 1, 1, 1});
  const auto heavy = weighted_gossip(g, {4, 1, 1, 1, 1});
  EXPECT_EQ(unit.virtual_radius, 1u);
  EXPECT_EQ(heavy.virtual_radius, 1u + 3u);
  EXPECT_EQ(heavy.total_messages, 8u);
  EXPECT_EQ(heavy.schedule.total_time(), 8u + 4u);
}

TEST(Weighted, ExternalLoadIsBounded) {
  // The chain projection's external traffic per real processor per round
  // stays at 1 receive; sends can combine one up + one down transmission.
  Rng rng(11);
  const auto g = graph::random_connected_gnp(12, 0.3, rng);
  std::vector<std::uint32_t> weights(12);
  for (auto& w : weights) w = 1 + static_cast<std::uint32_t>(rng.below(5));
  const auto result = weighted_gossip(g, weights);
  EXPECT_LE(result.max_external_receives, 2u);
  EXPECT_LE(result.max_external_sends, 2u);
}

TEST(Weighted, RejectsZeroWeight) {
  EXPECT_THROW((void)weighted_gossip(graph::path(3), {1, 0, 1}),
               ContractViolation);
  EXPECT_THROW((void)weighted_gossip(graph::path(3), {1, 1}),
               ContractViolation);
}

}  // namespace
}  // namespace mg::gossip
