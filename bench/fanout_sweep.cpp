// Extension bench: how much multicast width does fast gossip need?  The
// paper contrasts two extremes — telephone (one receiver per send) and
// full multicast (any neighbor subset).  Sweeping a k-port cap between
// them shows the crossover: on bounded-degree networks a tiny cap already
// recovers the multicast behaviour, while hubs (stars) need cap ~ degree.
#include <cstdio>

#include "gossip/bounded_fanout.h"
#include "gossip/concurrent_updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(12);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"line 25", graph::path(25)},
      {"binary tree 31", graph::k_ary_tree(31, 2)},
      {"ternary tree 40", graph::k_ary_tree(40, 3)},
      {"star 24", graph::star(24)},
      {"grid 5x5", graph::grid(5, 5)},
      {"random gnp 40", graph::random_connected_gnp(40, 0.1, rng)},
  };
  const std::vector<graph::Vertex> caps = {1, 2, 3, 4, 8, 16,
                                           gossip::kUnboundedFanout};

  TextTable table;
  table.new_row();
  table.cell(std::string("network"));
  table.cell(std::string("n"));
  table.cell(std::string("ConcUpDown (n+r)"));
  for (graph::Vertex cap : caps) {
    table.cell(cap == gossip::kUnboundedFanout ? std::string("cap inf")
                                               : "cap " + std::to_string(cap));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto instance = gossip::Instance::from_network(g);
    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(gossip::concurrent_updown(instance).total_time());
    for (graph::Vertex cap : caps) {
      const auto schedule = gossip::bounded_fanout_gossip(instance, cap);
      const auto report = model::validate_schedule(
          instance.tree().as_graph(), schedule, instance.initial());
      all_ok = all_ok && report.ok &&
               (cap == gossip::kUnboundedFanout ||
                schedule.max_fanout() <= cap);
      table.cell(schedule.total_time());
    }
  }

  std::printf(
      "k-port sweep: greedy up/down gossip with downward fanout capped\n"
      "(cap 1 = telephone model, cap inf = unrestricted multicast)\n\n"
      "%s\nall schedules valid with fanout within cap: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
