// Tests for BFS distances, eccentricity/radius/diameter/center (§3.1's
// O(mn) procedure), connectivity and bipartiteness.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "support/thread_pool.h"

namespace mg::graph {
namespace {

TEST(Properties, BfsDistancesOnPath) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Properties, BfsDistancesFromMiddle) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[4], 2u);
}

TEST(Properties, BfsUnreachableMarked) {
  Graph g(4);  // no edges
  const auto d = bfs_distances(g, 1);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[0], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Properties, EccentricityOfCycle) {
  const Graph g = cycle(8);
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_EQ(eccentricity(g, v), std::optional<std::uint32_t>(4));
  }
}

TEST(Properties, EccentricityNulloptWhenDisconnected) {
  Graph g(3);
  EXPECT_EQ(eccentricity(g, 0), std::nullopt);
}

TEST(Properties, MetricsOfStar) {
  const auto m = compute_metrics(star(10));
  EXPECT_EQ(m.radius, 1u);
  EXPECT_EQ(m.diameter, 2u);
  EXPECT_EQ(m.center, 0u);
  EXPECT_EQ(m.eccentricity[0], 1u);
  EXPECT_EQ(m.eccentricity[5], 2u);
}

TEST(Properties, MetricsOfSingleVertex) {
  const auto m = compute_metrics(Graph(1));
  EXPECT_EQ(m.radius, 0u);
  EXPECT_EQ(m.diameter, 0u);
  EXPECT_EQ(m.center, 0u);
}

TEST(Properties, CenterIsSmallestIdOnTies) {
  // Every vertex of a cycle has the same eccentricity; vertex 0 must win.
  const auto m = compute_metrics(cycle(6));
  EXPECT_EQ(m.center, 0u);
}

TEST(Properties, ParallelMetricsMatchSequential) {
  const Graph g = grid(9, 11);
  ThreadPool pool(4);
  const auto seq = compute_metrics(g);
  const auto par = compute_metrics(g, &pool);
  EXPECT_EQ(seq.radius, par.radius);
  EXPECT_EQ(seq.diameter, par.diameter);
  EXPECT_EQ(seq.center, par.center);
  EXPECT_EQ(seq.eccentricity, par.eccentricity);
}

TEST(Properties, RadiusAtMostHalfVertexCount) {
  // §4 uses r <= n/2; check across several families.
  for (const Graph& g :
       {path(17), cycle(12), grid(4, 7), star(9), complete(5)}) {
    const auto m = compute_metrics(g);
    EXPECT_LE(m.radius, g.vertex_count() / 2);
  }
}

TEST(Properties, RadiusDiameterInequality) {
  for (const Graph& g : {path(10), cycle(9), grid(5, 5), star(7)}) {
    const auto m = compute_metrics(g);
    EXPECT_LE(m.radius, m.diameter);
    EXPECT_LE(m.diameter, 2 * m.radius);
  }
}

TEST(Properties, ConnectivityDetection) {
  EXPECT_TRUE(is_connected(path(4)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_FALSE(is_connected(Graph(2)));
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(Properties, TreeDetection) {
  EXPECT_TRUE(is_tree(path(6)));
  EXPECT_TRUE(is_tree(star(5)));
  EXPECT_TRUE(is_tree(Graph(1)));
  EXPECT_FALSE(is_tree(cycle(4)));
  EXPECT_FALSE(is_tree(Graph(3)));  // disconnected forest
}

TEST(Properties, BipartiteDetection) {
  EXPECT_TRUE(is_bipartite(path(7)));
  EXPECT_TRUE(is_bipartite(cycle(8)));
  EXPECT_FALSE(is_bipartite(cycle(7)));
  EXPECT_TRUE(is_bipartite(grid(3, 3)));
  EXPECT_FALSE(is_bipartite(complete(3)));
  EXPECT_TRUE(is_bipartite(Graph(4)));  // edgeless
}

TEST(Properties, DegreeStats) {
  const auto stats = degree_stats(star(5));
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
}

TEST(Properties, DegreeStatsEmptyGraph) {
  const auto stats = degree_stats(Graph(0));
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 0u);
}

}  // namespace
}  // namespace mg::graph
