#include "gossip/updown.h"

#include "gossip/bounded_fanout.h"
#include "obs/span.h"

namespace mg::gossip {

model::Schedule updown_gossip(const Instance& instance) {
  MG_OBS_SPAN(algo_span, "gossip.updown");
  // The two-phase UpDown reconstruction is the unlimited-fanout case of the
  // greedy up/down engine (see bounded_fanout.h for the mechanics).
  return bounded_fanout_gossip(instance, kUnboundedFanout);
}

}  // namespace mg::gossip
