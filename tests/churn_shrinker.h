// Fuzz-style churn stream shrinker: when a differential replay fails on a
// long seeded stream, reduce it to a minimal reproducing case before
// anyone has to read it.  Two phases:
//
//   1. *prefix bisection* — every feed prefix is itself a legal feed, so
//      binary-search the shortest failing prefix (differential failures
//      are prefix-monotone: replay is deterministic and the check runs
//      after every event, so a stream fails iff it reaches its first bad
//      event);
//   2. *event elision* — walk the surviving prefix backwards (never the
//      last event: it is the trigger) and drop every event whose removal
//      keeps the stream both legal (preconditions can break when a later
//      event depends on a dropped one — `ContractViolation` means "keep
//      it") and failing.
//
// `regression_snippet` then renders the survivor as a paste-able C++
// initializer list; shrunk cases get pinned in churn_shrinker_test.cpp.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "churn/feed.h"
#include "graph/dynamic.h"
#include "graph/graph.h"
#include "support/contracts.h"

namespace mg::test {

/// True when replaying `events` on `g0` reproduces the failure under
/// investigation.  Must be deterministic.
using FailurePredicate = std::function<bool(
    const graph::Graph& g0, const std::vector<churn::ChurnEvent>& events)>;

/// True when every event's precondition holds at its position in the
/// stream (edges added only where absent, removed only where present...).
inline bool stream_legal(const graph::Graph& g0,
                         const std::vector<churn::ChurnEvent>& events) {
  graph::DynamicGraph g(g0);
  try {
    for (const auto& event : events) (void)churn::apply_event(g, event);
  } catch (const ContractViolation&) {
    return false;
  }
  return true;
}

struct ShrinkResult {
  std::vector<churn::ChurnEvent> events;  ///< minimal reproducing stream
  std::size_t original_size = 0;
  bool reproduced = false;  ///< false: the full stream never failed
};

inline ShrinkResult shrink_churn_stream(
    const graph::Graph& g0, std::vector<churn::ChurnEvent> events,
    const FailurePredicate& fails) {
  ShrinkResult result;
  result.original_size = events.size();
  if (!fails(g0, events)) return result;  // reproduced stays false
  result.reproduced = true;

  // Phase 1: shortest failing prefix, by bisection.
  std::size_t lo = 1;           // shortest length that could fail
  std::size_t hi = events.size();  // known to fail
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::vector<churn::ChurnEvent> prefix(
        events.begin(),
        events.begin() + static_cast<std::ptrdiff_t>(mid));
    if (fails(g0, prefix)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  events.resize(hi);

  // Phase 2: elide interior events (backwards; the final event is the
  // trigger and always stays).
  for (std::size_t i = events.size() - 1; i-- > 0;) {
    std::vector<churn::ChurnEvent> shorter = events;
    shorter.erase(shorter.begin() + static_cast<std::ptrdiff_t>(i));
    if (stream_legal(g0, shorter) && fails(g0, shorter)) {
      events = std::move(shorter);
    }
  }

  result.events = std::move(events);
  return result;
}

/// Renders a shrunk stream as a paste-able C++ regression case.
inline std::string regression_snippet(const ShrinkResult& shrunk,
                                      const std::string& graph_expr) {
  std::ostringstream out;
  out << "// shrunk churn regression: " << shrunk.events.size() << " of "
      << shrunk.original_size << " events\n";
  out << "const graph::Graph g0 = " << graph_expr << ";\n";
  out << "const std::vector<churn::ChurnEvent> stream = {\n";
  for (const auto& event : shrunk.events) {
    out << "    {churn::EventKind::k";
    switch (event.kind) {
      case churn::EventKind::kAddEdge:
        out << "AddEdge";
        break;
      case churn::EventKind::kRemoveEdge:
        out << "RemoveEdge";
        break;
      case churn::EventKind::kAddNode:
        out << "AddNode";
        break;
      case churn::EventKind::kRemoveNode:
        out << "RemoveNode";
        break;
    }
    out << ", " << event.u << ", " << event.v << ", " << event.time
        << "},\n";
  }
  out << "};\n";
  return out.str();
}

}  // namespace mg::test
