# Empty dependencies file for mmc_test.
# This may be replaced when dependencies are built.
