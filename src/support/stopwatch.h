// Monotonic wall-clock stopwatch used by the benchmark harness and the
// parallel-construction speedup measurements.
#pragma once

#include <chrono>

namespace mg {

/// Starts timing at construction; `seconds()`/`millis()` report the elapsed
/// monotonic time, `restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mg
