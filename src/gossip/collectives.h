// Companion collectives on the gossip tree: gather (all-to-one) and
// scatter (one-to-all personalized).  Gossiping composes them — §2's
// applications (sorting, matrix multiplication, DFT) use all three — and
// both inherit the paper's machinery: gather is Propagate-Up's delivery
// guarantee in isolation (the root receives message m at time m, which is
// optimal since the root can absorb only one message per round), and
// scatter is its time-reversed dual (the root emits one message per round;
// serving deeper destinations first is optimal by an exchange argument).
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

/// All-to-one: every processor's message reaches the root.  Unicast; the
/// root receives message m exactly at time m, so the total time is n - 1 —
/// optimal (the root receives at most one message per round).
[[nodiscard]] model::Schedule gather_schedule(const Instance& instance);

/// One-to-all personalized: the root initially holds one message per
/// processor (message id = the destination's DFS label); after the
/// schedule, processor v has received message label(v).  Deepest
/// destinations are served first; the total time is
/// max_t (t + depth(d_t)) over the emission order, which the
/// deepest-first order minimizes.
[[nodiscard]] model::Schedule scatter_schedule(const Instance& instance);

/// The scatter schedule's optimal total time for this instance.
[[nodiscard]] std::size_t scatter_time(const Instance& instance);

}  // namespace mg::gossip
