// Adversarial tests for the mg::fault layer: DropSet semantics, FaultPlan
// reproducibility, and the simulator's behaviour under deterministic drops,
// seeded probabilistic drops, crash-stop processors, and per-edge delivery
// delays — including the observability counters the fault path feeds.
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "obs/registry.h"
#include "sim/network_sim.h"

namespace mg {
namespace {

/// Convenience: ConcurrentUpDown solution + tree network + initial labels.
struct SolvedRun {
  gossip::Solution sol;
  graph::Graph tree;
  std::vector<model::Message> initial;
};

SolvedRun make_run(const graph::Graph& g) {
  gossip::Solution sol = gossip::solve_gossip(g);
  graph::Graph tree = sol.instance.tree().as_graph();
  std::vector<model::Message> initial = sol.instance.initial();
  return {std::move(sol), std::move(tree), std::move(initial)};
}

TEST(DropSet, MembershipIsExact) {
  fault::DropSet set;
  EXPECT_TRUE(set.empty());
  set.insert(3, 7);
  set.insert(3, 7);  // duplicate collapses
  set.insert(0, 0);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(3, 7));
  EXPECT_TRUE(set.contains(0, 0));
  EXPECT_FALSE(set.contains(7, 3));  // round/sender are not interchangeable
  EXPECT_FALSE(set.contains(3, 8));
  EXPECT_FALSE(set.contains(4, 7));
}

TEST(FaultPlan, EmptyPlanPerturbsNothing) {
  const fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.drops(0, 0));
  EXPECT_EQ(plan.crash_round(5), fault::kNever);
  EXPECT_EQ(plan.extra_delay(1, 2), 0u);

  const SolvedRun run = make_run(graph::petersen());
  sim::SimOptions options;
  options.faults = &plan;
  const auto faulty = sim::simulate(run.tree, run.sol.schedule, run.initial,
                                    options);
  const auto clean = sim::simulate(run.tree, run.sol.schedule, run.initial);
  EXPECT_TRUE(faulty.completed);
  EXPECT_EQ(faulty.total_time, clean.total_time);
  EXPECT_EQ(faulty.knowledge, clean.knowledge);
  EXPECT_EQ(faulty.injected_drops, 0u);
}

TEST(FaultPlan, DeterministicDropMatchesLegacyDropList) {
  // The legacy (round, sender) vector and a FaultPlan deterministic drop
  // must produce identical degraded runs — the vector is now folded into
  // the same O(1) DropSet the plan uses.
  const SolvedRun run = make_run(graph::fig4_network());
  const graph::Vertex root = run.sol.instance.tree().root();

  sim::SimOptions legacy;
  legacy.drop.emplace_back(5, root);
  legacy.drop.emplace_back(7, graph::Vertex{4});
  const auto legacy_run =
      sim::simulate(run.tree, run.sol.schedule, run.initial, legacy);

  fault::FaultPlan plan;
  plan.drop(5, root).drop(7, 4);
  sim::SimOptions with_plan;
  with_plan.faults = &plan;
  const auto plan_run =
      sim::simulate(run.tree, run.sol.schedule, run.initial, with_plan);

  EXPECT_FALSE(plan_run.completed);
  EXPECT_EQ(plan_run.injected_drops, legacy_run.injected_drops);
  EXPECT_EQ(plan_run.skipped_sends, legacy_run.skipped_sends);
  EXPECT_EQ(plan_run.missing, legacy_run.missing);
  EXPECT_EQ(plan_run.final_holds, legacy_run.final_holds);
  EXPECT_EQ(plan_run.knowledge, legacy_run.knowledge);
}

TEST(FaultPlan, ProbabilisticDropsAreReproducibleAndSeedSensitive) {
  fault::FaultPlan a;
  a.drop_rate(0.3).seed(1);
  fault::FaultPlan b;
  b.drop_rate(0.3).seed(1);
  fault::FaultPlan c;
  c.drop_rate(0.3).seed(2);

  std::size_t dropped_a = 0;
  std::size_t dropped_b = 0;
  std::size_t dropped_c = 0;
  for (std::size_t round = 0; round < 200; ++round) {
    for (graph::Vertex sender = 0; sender < 50; ++sender) {
      // The verdict is a pure function of (seed, round, sender): asking
      // twice gives the same answer (no hidden stream state).
      EXPECT_EQ(a.drops(round, sender), a.drops(round, sender));
      dropped_a += a.drops(round, sender) ? 1u : 0u;
      dropped_b += b.drops(round, sender) ? 1u : 0u;
      dropped_c += c.drops(round, sender) ? 1u : 0u;
    }
  }
  EXPECT_EQ(dropped_a, dropped_b);
  EXPECT_NE(dropped_a, dropped_c);
  // 10000 coins at p = 0.3: the count concentrates near 3000.
  EXPECT_GT(dropped_a, 2500u);
  EXPECT_LT(dropped_a, 3500u);
}

TEST(FaultPlan, ProbabilisticDropsDegradeASimulation) {
  const SolvedRun run = make_run(graph::grid(5, 5));
  fault::FaultPlan plan;
  plan.drop_rate(0.25).seed(9);
  sim::SimOptions options;
  options.faults = &plan;
  const auto faulty =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);
  EXPECT_GT(faulty.injected_drops, 0u);
  EXPECT_FALSE(faulty.completed);

  // Same plan, same schedule: bit-identical degradation.
  const auto again =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);
  EXPECT_EQ(faulty.injected_drops, again.injected_drops);
  EXPECT_EQ(faulty.final_holds, again.final_holds);
}

TEST(FaultPlan, RoundOffsetShiftsTheCoinSequence) {
  // The same schedule replayed at a later absolute offset must see the
  // fabric's later coins, not a replay of round 0's.
  const SolvedRun run = make_run(graph::cycle(12));
  fault::FaultPlan plan;
  plan.drop_rate(0.3).seed(4);
  sim::SimOptions at_zero;
  at_zero.faults = &plan;
  sim::SimOptions at_hundred = at_zero;
  at_hundred.fault_round_offset = 100;
  const auto first =
      sim::simulate(run.tree, run.sol.schedule, run.initial, at_zero);
  const auto later =
      sim::simulate(run.tree, run.sol.schedule, run.initial, at_hundred);
  EXPECT_NE(first.final_holds, later.final_holds);
}

TEST(FaultPlan, CrashStopSilencesAProcessor) {
  const SolvedRun run = make_run(graph::fig4_network());
  const graph::Vertex root = run.sol.instance.tree().root();
  fault::FaultPlan plan;
  plan.crash(root, 3);

  sim::SimOptions options;
  options.faults = &plan;
  options.record_trace = true;
  const auto faulty =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);

  EXPECT_FALSE(faulty.completed);
  EXPECT_GT(faulty.crashed_sends, 0u);
  for (const auto& event : faulty.trace) {
    if (event.kind == sim::SimEvent::Kind::kSend) {
      EXPECT_TRUE(event.node != root || event.time < 3)
          << "crashed processor sent at t=" << event.time;
    } else {
      EXPECT_TRUE(event.node != root || event.time < 3)
          << "crashed processor received at t=" << event.time;
    }
  }
  // The paper's schedules funnel everything through the root: killing it
  // early starves every other processor of remote messages.
  std::size_t starved = 0;
  for (const auto missing : faulty.missing) starved += missing > 0 ? 1u : 0u;
  EXPECT_GT(starved, 1u);
}

TEST(FaultPlan, AliveAtTracksCrashRounds) {
  fault::FaultPlan plan;
  plan.crash(2, 5).crash(4, 0);
  EXPECT_EQ(plan.crashes_before(1), 1u);
  EXPECT_EQ(plan.crashes_before(6), 2u);
  const auto at4 = plan.alive_at(4, 6);
  EXPECT_EQ(at4, (std::vector<char>{1, 1, 1, 1, 0, 1}));
  const auto at5 = plan.alive_at(5, 6);
  EXPECT_EQ(at5, (std::vector<char>{1, 1, 0, 1, 0, 1}));
}

TEST(FaultPlan, PerEdgeDelayPostponesDelivery) {
  // Two processors exchanging their messages: no forwarding depends on
  // the late arrivals, so a pure delay loses nothing — the run completes,
  // exactly `extra` time units later, and the knowledge curve keeps one
  // entry per time unit through the drain past the schedule's horizon.
  const SolvedRun run = make_run(graph::path(2));
  const auto clean = sim::simulate(run.tree, run.sol.schedule, run.initial);
  ASSERT_TRUE(clean.completed);

  fault::FaultPlan plan;
  plan.delay(0, 1, 3);
  EXPECT_EQ(plan.extra_delay(1, 0), 3u);  // undirected
  sim::SimOptions options;
  options.faults = &plan;
  const auto slow =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);

  EXPECT_TRUE(slow.completed);
  EXPECT_EQ(slow.total_time, clean.total_time + 3);
  EXPECT_EQ(slow.knowledge.size(), slow.total_time + 1);
  EXPECT_EQ(slow.knowledge.back(), clean.knowledge.back());
}

TEST(FaultPlan, DelayedForwardingCascades) {
  // On a line everything is store-and-forward: delaying the first hop of
  // the chain makes the downstream forwarder send before its input
  // arrives, which the simulator counts as a skipped send.
  const SolvedRun run = make_run(graph::path(5));
  fault::FaultPlan plan;
  plan.delay(0, 1, 6);
  sim::SimOptions options;
  options.faults = &plan;
  const auto slow =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);
  EXPECT_FALSE(slow.completed);
  EXPECT_GT(slow.skipped_sends, 0u);
}

#if MG_OBS_ENABLED
TEST(FaultPlan, ObservabilityCountersTrackFaults) {
  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);
  registry.reset();

  const SolvedRun run = make_run(graph::petersen());
  fault::FaultPlan plan;
  plan.drop_rate(0.3).seed(11).crash(0, 4);
  sim::SimOptions options;
  options.faults = &plan;
  const auto faulty =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("fault.injected_drops"), faulty.injected_drops);
  EXPECT_GT(faulty.injected_drops, 0u);
  EXPECT_EQ(snap.counter("fault.crashes"), 1u);
  EXPECT_EQ(snap.counter("sim.dropped_transmissions"),
            faulty.injected_drops);
}
#endif  // MG_OBS_ENABLED

TEST(FaultPlan, CombinedModelsCompose) {
  // Drops + a crash + a delay in one plan: the simulator applies all
  // three without tripping contracts, and the loss accounting is disjoint
  // (a transmission is counted once: crash beats drop beats cascade).
  const SolvedRun run = make_run(graph::grid(4, 4));
  fault::FaultPlan plan;
  plan.drop_rate(0.15).seed(3).crash(1, 6).delay(0, 1, 2).delay(4, 5, 1);
  sim::SimOptions options;
  options.faults = &plan;
  const auto faulty =
      sim::simulate(run.tree, run.sol.schedule, run.initial, options);
  EXPECT_FALSE(faulty.completed);
  const std::size_t accounted = faulty.injected_drops +
                                faulty.crashed_sends + faulty.skipped_sends;
  EXPECT_LE(accounted, run.sol.schedule.transmission_count());
  EXPECT_GT(accounted, 0u);
}

}  // namespace
}  // namespace mg
