// Composable fault models for schedule execution (`mg::fault`).
//
// The paper's n + r bound (Theorem 1) assumes a lossless synchronous
// network; real multicast fabrics drop, delay, and crash.  A `FaultPlan`
// describes, deterministically and reproducibly, what the fabric does to a
// run:
//
//  * deterministic drops — an explicit set of (round, sender) transmission
//    addresses, answered in O(1) by `DropSet` (a hash set; the simulator's
//    original std::find list scan was O(drops) per transmission);
//  * probabilistic drops — every transmission is dropped i.i.d. with
//    probability `drop_rate`.  The coin for (round, sender) is a hash of
//    (seed, round, sender), so the outcome is a pure function of the plan:
//    re-running the same schedule reproduces the same faults, and the
//    verdict does not depend on evaluation order;
//  * crash-stop processors — a processor with crash round c executes
//    rounds 0..c-1 and then stops: it sends nothing at rounds >= c and
//    every message that would arrive at time >= c is lost (it died before
//    the receive);
//  * per-edge delivery delay — a message multicast over edge {u, v} at
//    round t arrives at t + 1 + extra_delay(u, v) instead of t + 1
//    (asymmetric congestion is modelled by the undirected edge key; both
//    directions share the delay).
//
// Plans are consumed by `sim::simulate` via `sim::SimOptions::faults` and
// by the self-healing driver `gossip::solve_with_recovery`, which queries
// the plan at absolute round offsets so faults keep firing while recovery
// rounds run.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace mg::fault {

/// Crash round value meaning "never crashes".
inline constexpr std::size_t kNever = static_cast<std::size_t>(-1);

/// O(1) membership set of (round, sender) transmission addresses.  The
/// round-based simulator pays one lookup per scheduled transmission, so
/// fault-heavy runs need this to be constant time (satellite of ISSUE 3:
/// the previous implementation scanned a vector with std::find).
class DropSet {
 public:
  DropSet() = default;

  void insert(std::size_t round, graph::Vertex sender) {
    keys_.insert(key(round, sender));
  }

  [[nodiscard]] bool contains(std::size_t round, graph::Vertex sender) const {
    return keys_.find(key(round, sender)) != keys_.end();
  }

  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

 private:
  // Rounds are bounded by the serialization ceiling n(n-1) with n < 2^16
  // in any realistic run, so a 32/32 split cannot collide.
  static std::uint64_t key(std::size_t round, graph::Vertex sender) {
    return (static_cast<std::uint64_t>(round) << 32) |
           static_cast<std::uint64_t>(sender);
  }

  std::unordered_set<std::uint64_t> keys_;
};

/// A reproducible description of everything the fabric does wrong.
/// Builders chain: `FaultPlan().drop_rate(0.1).seed(7).crash(3, 12)`.
class FaultPlan {
 public:
  FaultPlan() = default;

  // --- builders -----------------------------------------------------------

  /// Deterministically drops every transmission sent by `sender` at
  /// `round` (absolute round index).
  FaultPlan& drop(std::size_t round, graph::Vertex sender) {
    drops_.insert(round, sender);
    return *this;
  }

  /// Drops every transmission i.i.d. with probability `p` in [0, 1].
  FaultPlan& drop_rate(double p) {
    drop_rate_ = p;
    return *this;
  }

  /// Seed for the probabilistic coins (default 0x5eed).
  FaultPlan& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  /// Crash-stop: processor `v` executes rounds 0..from_round-1 only.
  FaultPlan& crash(graph::Vertex v, std::size_t from_round) {
    crashes_[v] = from_round;
    return *this;
  }

  /// Messages over edge {u, v} take 1 + `extra` time units to arrive.
  FaultPlan& delay(graph::Vertex u, graph::Vertex v, std::size_t extra) {
    delays_[edge_key(u, v)] = extra;
    if (extra > max_delay_) max_delay_ = extra;
    return *this;
  }

  // --- queries (the simulator's hot path) ---------------------------------

  /// True when the plan can never perturb a run (the simulator's fast
  /// path skips all fault bookkeeping).
  [[nodiscard]] bool empty() const {
    return drops_.empty() && drop_rate_ <= 0.0 && crashes_.empty() &&
           delays_.empty();
  }

  /// Combined deterministic + probabilistic drop verdict for the
  /// transmission sent by `sender` at absolute round `round`.
  [[nodiscard]] bool drops(std::size_t round, graph::Vertex sender) const {
    if (drops_.contains(round, sender)) return true;
    if (drop_rate_ <= 0.0) return false;
    return coin(round, sender) < drop_rate_;
  }

  /// Round from which `v` is dead (kNever when it never crashes).
  [[nodiscard]] std::size_t crash_round(graph::Vertex v) const {
    const auto it = crashes_.find(v);
    return it == crashes_.end() ? kNever : it->second;
  }

  /// True when `v` is dead at time `t` (crash takes effect at the start of
  /// its round: no sends at rounds >= crash, no receives at times >= crash).
  [[nodiscard]] bool crashed(graph::Vertex v, std::size_t t) const {
    return t >= crash_round(v);
  }

  /// Extra delivery delay over edge {u, v} (0 when unlisted).
  [[nodiscard]] std::size_t extra_delay(graph::Vertex u,
                                        graph::Vertex v) const {
    if (delays_.empty()) return 0;
    const auto it = delays_.find(edge_key(u, v));
    return it == delays_.end() ? 0 : it->second;
  }

  /// Largest extra delay in the plan — the simulator's drain horizon.
  [[nodiscard]] std::size_t max_extra_delay() const { return max_delay_; }

  [[nodiscard]] bool has_crashes() const { return !crashes_.empty(); }
  [[nodiscard]] double drop_probability() const { return drop_rate_; }
  [[nodiscard]] std::uint64_t seed_value() const { return seed_; }
  [[nodiscard]] const DropSet& deterministic_drops() const { return drops_; }

  /// Number of distinct processors whose crash round is < `horizon` — the
  /// crash events that can affect a run of that many rounds.
  [[nodiscard]] std::size_t crashes_before(std::size_t horizon) const;

  /// alive[v] = !crashed(v, t): processor v still participates at time `t`
  /// (crash_round(v) > t); the survivor set the recovery driver plans on.
  [[nodiscard]] std::vector<char> alive_at(std::size_t t,
                                           graph::Vertex n) const;

 private:
  static std::uint64_t edge_key(graph::Vertex u, graph::Vertex v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) |
           static_cast<std::uint64_t>(v);
  }

  /// Uniform [0, 1) coin for (round, sender), a pure function of the seed.
  [[nodiscard]] double coin(std::size_t round, graph::Vertex sender) const;

  DropSet drops_;
  double drop_rate_ = 0.0;
  std::uint64_t seed_ = 0x5eedULL;
  std::size_t max_delay_ = 0;
  std::unordered_map<graph::Vertex, std::size_t> crashes_;
  std::unordered_map<std::uint64_t, std::size_t> delays_;
};

}  // namespace mg::fault
