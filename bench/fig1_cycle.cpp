// Experiment F1 (Fig. 1, network N1): on a Hamiltonian circuit the
// rotation schedule solves gossiping in the optimal n - 1 rounds.  Sweep
// cycle sizes; compare the circuit rotation against ConcurrentUpDown on the
// minimum-depth spanning tree (whose radius is n/2, the algorithm's worst
// family) and against the trivial lower bound.
#include <cstdio>

#include "gossip/bounds.h"
#include "gossip/hamiltonian_gossip.h"
#include "gossip/solve.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/table.h"

int main() {
  using namespace mg;
  TextTable table;
  table.new_row();
  for (const char* h : {"n", "lower bound n-1", "rotation (Fig.1)",
                        "ConcurrentUpDown (n+r)", "radius", "rotation opt?"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (graph::Vertex n : {3u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u,
                          1024u}) {
    const auto g = graph::n1_cycle(n);
    const auto rotation = gossip::hamiltonian_gossip(g);
    if (!rotation) {
      std::printf("unexpected: no Hamiltonian circuit on C_%u\n", n);
      return 1;
    }
    const auto report = model::validate_schedule(g, *rotation);
    all_ok = all_ok && report.ok;

    const auto sol = gossip::solve_gossip(g);
    all_ok = all_ok && sol.report.ok;

    table.new_row();
    table.cell(static_cast<std::size_t>(n));
    table.cell(gossip::trivial_lower_bound(n));
    table.cell(rotation->total_time());
    table.cell(sol.schedule.total_time());
    table.cell(static_cast<std::size_t>(sol.instance.radius()));
    table.cell(std::string(
        rotation->total_time() == gossip::trivial_lower_bound(n) ? "yes"
                                                                 : "NO"));
  }

  std::printf(
      "F1 / Fig. 1 (network N1): gossiping along a Hamiltonian circuit\n"
      "Paper claim: rotation completes in n - 1 rounds (optimal); the tree\n"
      "algorithm pays n + r with r = n/2 on cycles (its worst family).\n\n%s\n",
      table.render().c_str());
  return all_ok ? 0 : 1;
}
