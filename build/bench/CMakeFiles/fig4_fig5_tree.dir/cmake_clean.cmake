file(REMOVE_RECURSE
  "CMakeFiles/fig4_fig5_tree.dir/fig4_fig5_tree.cpp.o"
  "CMakeFiles/fig4_fig5_tree.dir/fig4_fig5_tree.cpp.o.d"
  "fig4_fig5_tree"
  "fig4_fig5_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fig5_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
