// Property battery for the concurrent gossip engine (`mg::engine`).
//
// Over a seeded sweep of named and random connected graphs, asserts the
// cache is *transparent*: a cache-hit result is byte-identical to a fresh
// uncached solve, every returned schedule passes the independent model
// validator, and ConcurrentUpDown keeps the Theorem 1 round count n + r on
// every graph in the sweep.  Also pins the fingerprint contract the cache
// keys on: deterministic, insertion-order invariant, and collision-free
// across the sweep.
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace mg::engine {
namespace {

/// The sweep: structurally distinct connected graphs, n >= 3 (the paper's
/// precondition), mixing every generator family the benches use.
std::vector<std::pair<std::string, graph::Graph>> sweep_graphs() {
  std::vector<std::pair<std::string, graph::Graph>> graphs;
  graphs.emplace_back("path/7", graph::path(7));
  graphs.emplace_back("path/12", graph::path(12));
  graphs.emplace_back("cycle/9", graph::cycle(9));
  graphs.emplace_back("cycle/16", graph::cycle(16));
  graphs.emplace_back("star/10", graph::star(10));
  graphs.emplace_back("complete/8", graph::complete(8));
  graphs.emplace_back("wheel/11", graph::wheel(11));
  graphs.emplace_back("grid/4x5", graph::grid(4, 5));
  graphs.emplace_back("grid/3x9", graph::grid(3, 9));
  graphs.emplace_back("torus/3x4", graph::torus(3, 4));
  graphs.emplace_back("hypercube/3", graph::hypercube(3));
  graphs.emplace_back("hypercube/4", graph::hypercube(4));
  graphs.emplace_back("binary_tree/21", graph::k_ary_tree(21, 2));
  graphs.emplace_back("caterpillar/6x2", graph::caterpillar(6, 2));
  graphs.emplace_back("binomial/4", graph::binomial_tree(4));
  graphs.emplace_back("lollipop/5+6", graph::lollipop(5, 6));
  graphs.emplace_back("petersen", graph::petersen());
  graphs.emplace_back("fig4", graph::fig4_network());
  Rng rng(0xE16133ULL);
  for (int i = 0; i < 8; ++i) {
    const auto n = static_cast<graph::Vertex>(12 + 5 * i);
    graphs.emplace_back("tree/n=" + std::to_string(n),
                        graph::random_tree(n, rng));
    graphs.emplace_back(
        "gnp/n=" + std::to_string(n),
        graph::random_connected_gnp(n, 3.0 / static_cast<double>(n), rng));
    graphs.emplace_back("geo/n=" + std::to_string(n),
                        graph::random_geometric(n, 0.3, rng));
  }
  return graphs;
}

constexpr gossip::Algorithm kAlgorithms[] = {
    gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
    gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

TEST(EngineProperty, FingerprintDeterministicAndCollisionFreeOnSweep) {
  const auto graphs = sweep_graphs();
  std::set<std::uint64_t> digests;
  for (const auto& [name, g] : graphs) {
    const std::uint64_t fp = graph_fingerprint(g);
    EXPECT_EQ(fp, graph_fingerprint(g)) << name;
    digests.insert(fp);
  }
  // Structurally distinct graphs must land on distinct cache keys.
  EXPECT_EQ(digests.size(), graphs.size());
}

TEST(EngineProperty, FingerprintIgnoresEdgeInsertionOrder) {
  const graph::Graph forward = graph::petersen();
  auto edges = forward.edges();
  Rng rng(99);
  rng.shuffle(edges);
  const graph::Graph shuffled =
      graph::Graph::from_edges(forward.vertex_count(), edges);
  EXPECT_EQ(graph_fingerprint(forward), graph_fingerprint(shuffled));
  // And a genuinely different graph lands elsewhere.
  EXPECT_NE(graph_fingerprint(forward), graph_fingerprint(graph::cycle(10)));
}

// The core transparency sweep: hit == fresh solve, byte for byte.
TEST(EngineProperty, CacheHitIsByteIdenticalToFreshSolve) {
  const auto graphs = sweep_graphs();
  // Capacity is split per shard, and fingerprints spread unevenly; 16x the
  // key count guarantees no shard can overflow, so zero evictions below.
  Engine engine(EngineOptions{.cache_capacity = 16 * graphs.size(),
                              .shards = 4, .threads = 1});
  for (const auto& [name, g] : graphs) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      const ResultPtr first = engine.solve(g, algorithm);
      const ResultPtr hit = engine.solve(g, algorithm);
      // A hit returns the very cached object, not a copy.
      EXPECT_EQ(first.get(), hit.get()) << name;

      const gossip::Solution fresh = gossip::solve_gossip(g, algorithm);
      EXPECT_EQ(hit->schedule.to_string(), fresh.schedule.to_string())
          << name << " / " << gossip::algorithm_name(algorithm);
      EXPECT_EQ(hit->vertex_count, fresh.instance.vertex_count());
      EXPECT_EQ(hit->radius, fresh.instance.radius());
      EXPECT_EQ(hit->initial, fresh.instance.initial());

      // Every returned schedule passes the validator — both the report
      // computed at solve time and an independent re-validation here.
      EXPECT_TRUE(hit->report.ok) << name << ": " << hit->report.error;
      model::ValidatorOptions options;
      if (algorithm == gossip::Algorithm::kTelephone) {
        options.variant = model::ModelVariant::kTelephone;
      }
      const auto report =
          model::validate_schedule(fresh.instance.tree().as_graph(),
                                   hit->schedule, hit->initial, options);
      EXPECT_TRUE(report.ok) << name << ": " << report.error;
    }
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  EXPECT_EQ(stats.misses, graphs.size() * std::size(kAlgorithms));
  EXPECT_EQ(stats.evictions, 0u);  // capacity covers the whole sweep
}

TEST(EngineProperty, ConcurrentUpDownKeepsTheoremOneRounds) {
  const auto graphs = sweep_graphs();
  Engine engine(EngineOptions{.cache_capacity = 2 * graphs.size(),
                              .shards = 8, .threads = 1});
  for (const auto& [name, g] : graphs) {
    const ResultPtr result =
        engine.solve(g, gossip::Algorithm::kConcurrentUpDown);
    EXPECT_EQ(result->schedule.total_time(),
              result->vertex_count + result->radius)
        << name;  // Theorem 1: exactly n + r
  }
}

TEST(EngineProperty, EvictionNeverInvalidatesHeldResults) {
  Engine engine(EngineOptions{.cache_capacity = 2, .shards = 1,
                              .threads = 1});
  const ResultPtr held = engine.solve(graph::cycle(8));
  // Displace the whole cache several times over.
  for (graph::Vertex n = 9; n < 25; ++n) (void)engine.solve(graph::cycle(n));
  EXPECT_GT(engine.stats().evictions, 0u);
  EXPECT_LE(engine.cache_size(), 2u);
  // The evicted result is still fully usable through the shared_ptr.
  EXPECT_TRUE(held->report.ok);
  EXPECT_EQ(held->schedule.total_time(), 8u + 4u);  // n + r on C8
  // Re-requesting it is a fresh miss that must agree with the held copy.
  const ResultPtr again = engine.solve(graph::cycle(8));
  EXPECT_NE(held.get(), again.get());
  EXPECT_EQ(held->schedule.to_string(), again->schedule.to_string());
}

TEST(EngineProperty, AlgorithmIsPartOfTheCacheKey) {
  Engine engine(EngineOptions{.cache_capacity = 16, .shards = 2,
                              .threads = 1});
  const graph::Graph g = graph::grid(4, 4);
  const ResultPtr cud = engine.solve(g, gossip::Algorithm::kConcurrentUpDown);
  const ResultPtr simple = engine.solve(g, gossip::Algorithm::kSimple);
  EXPECT_EQ(engine.stats().misses, 2u);  // same graph, two keys
  EXPECT_NE(cud.get(), simple.get());
  EXPECT_LT(cud->schedule.total_time(), simple->schedule.total_time());
}

TEST(EngineProperty, FailedSolvesAreNeverCached) {
  Engine engine(EngineOptions{.cache_capacity = 8, .shards = 2,
                              .threads = 1});
  const graph::Graph disconnected(4);  // no edges: solve must throw
  EXPECT_THROW((void)engine.solve(disconnected), ContractViolation);
  EXPECT_THROW((void)engine.solve(disconnected), ContractViolation);
  EXPECT_EQ(engine.stats().misses, 2u);  // second attempt re-misses
  EXPECT_EQ(engine.cache_size(), 0u);
  // The engine stays fully usable after a failure.
  const ResultPtr ok = engine.solve(graph::petersen());
  EXPECT_TRUE(ok->report.ok);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
}

TEST(EngineProperty, BatchMatchesSerialRequestByRequest) {
  const auto graphs = sweep_graphs();
  std::vector<Request> requests;
  for (const auto& [name, g] : graphs) {
    requests.push_back(Request{g, gossip::Algorithm::kConcurrentUpDown});
    requests.push_back(Request{g, gossip::Algorithm::kSimple});
  }
  Engine batch_engine(EngineOptions{.cache_capacity = 4 * requests.size(),
                                    .shards = 8, .threads = 4});
  const auto results = batch_engine.solve_batch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NE(results[i], nullptr);
    const gossip::Solution fresh =
        gossip::solve_gossip(requests[i].graph, requests[i].algorithm);
    EXPECT_EQ(results[i]->schedule.to_string(), fresh.schedule.to_string());
    EXPECT_TRUE(results[i]->report.ok);
  }
  const EngineStats stats = batch_engine.stats();
  EXPECT_EQ(stats.requests, requests.size());
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  EXPECT_EQ(stats.misses, requests.size());  // all keys distinct here
}

}  // namespace
}  // namespace mg::engine
