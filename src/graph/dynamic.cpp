#include "graph/dynamic.h"

#include <algorithm>

#include "obs/registry.h"
#include "support/contracts.h"

namespace mg::graph {

namespace {

/// Inserts `v` into sorted vector `vec` (absent), or erases it (present).
/// Returns +1 on insert, -1 on erase.
int toggle_sorted(std::vector<Vertex>& vec, Vertex v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) {
    vec.erase(it);
    return -1;
  }
  vec.insert(it, v);
  return 1;
}

bool contains_sorted(const std::vector<Vertex>& vec, Vertex v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

DynamicGraph::DynamicGraph(Graph base, DynamicGraphOptions options)
    : n_(base.vertex_count()),
      edge_count_(base.edge_count()),
      base_(std::move(base)),
      added_(n_),
      removed_(n_),
      options_(options),
      snapshot_(base_),
      snapshot_valid_(true) {}

bool DynamicGraph::has_edge(Vertex u, Vertex v) const {
  MG_EXPECTS(u < n_ && v < n_);
  if (contains_sorted(added_[u], v)) return true;
  if (contains_sorted(removed_[u], v)) return false;
  return base_.has_edge(u, v);
}

Vertex DynamicGraph::degree(Vertex v) const {
  MG_EXPECTS(v < n_);
  return static_cast<Vertex>(base_.degree(v) + added_[v].size() -
                             removed_[v].size());
}

void DynamicGraph::add_edge(Vertex u, Vertex v) {
  MG_EXPECTS_MSG(u != v, "self-loops are not allowed");
  MG_EXPECTS(u < n_ && v < n_);
  MG_EXPECTS_MSG(!has_edge(u, v), "edge already present");
  if (base_.has_edge(u, v)) {
    // Re-adding a base edge: cancel its removal records.
    overlay_entries_ +=
        static_cast<std::size_t>(toggle_sorted(removed_[u], v) +
                                 toggle_sorted(removed_[v], u));
  } else {
    overlay_entries_ += static_cast<std::size_t>(
        toggle_sorted(added_[u], v) + toggle_sorted(added_[v], u));
  }
  ++edge_count_;
  ++stats_.edges_added;
  MG_OBS_ADD("churn.graph.edges_added", 1);
  invalidate_snapshot();
  maybe_collapse();
}

void DynamicGraph::remove_edge(Vertex u, Vertex v) {
  MG_EXPECTS(u < n_ && v < n_);
  MG_EXPECTS_MSG(has_edge(u, v), "edge not present");
  if (contains_sorted(added_[u], v)) {
    // Removing an overlay-added edge: cancel its addition records.
    overlay_entries_ -= 2;
    toggle_sorted(added_[u], v);
    toggle_sorted(added_[v], u);
  } else {
    overlay_entries_ += static_cast<std::size_t>(
        toggle_sorted(removed_[u], v) + toggle_sorted(removed_[v], u));
  }
  --edge_count_;
  ++stats_.edges_removed;
  MG_OBS_ADD("churn.graph.edges_removed", 1);
  invalidate_snapshot();
  maybe_collapse();
}

Vertex DynamicGraph::add_node(Vertex attach_to) {
  MG_EXPECTS(attach_to < n_);
  const Vertex fresh = n_;
  ++n_;
  added_.emplace_back();
  removed_.emplace_back();
  overlay_entries_ += static_cast<std::size_t>(
      toggle_sorted(added_[fresh], attach_to) +
      toggle_sorted(added_[attach_to], fresh));
  ++edge_count_;
  ++stats_.nodes_added;
  MG_OBS_ADD("churn.graph.nodes_added", 1);
  invalidate_snapshot();
  collapse();  // vertex-count changes always re-flatten
  return fresh;
}

void DynamicGraph::remove_node(Vertex v) {
  MG_EXPECTS(v < n_);
  MG_EXPECTS_MSG(n_ >= 2, "cannot remove the last vertex");
  // Work on the flat merged view: collapse first, then rebuild without v,
  // renumbering the last vertex to v (ids stay dense 0..n-2).
  collapse();
  const Vertex last = n_ - 1;
  std::vector<Edge> edges;
  edges.reserve(base_.edge_count());
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex w : base_.neighbors(u)) {
      if (u >= w || u == v || w == v) continue;
      const Vertex a = (u == last) ? v : u;
      const Vertex b = (w == last) ? v : w;
      edges.emplace_back(a, b);
    }
  }
  --n_;
  base_ = Graph::from_edges(n_, edges);
  edge_count_ = base_.edge_count();
  added_.assign(n_, {});
  removed_.assign(n_, {});
  overlay_entries_ = 0;
  ++stats_.nodes_removed;
  ++stats_.collapses;
  MG_OBS_ADD("churn.graph.nodes_removed", 1);
  MG_OBS_ADD("churn.graph.collapses", 1);
  invalidate_snapshot();
}

const Graph& DynamicGraph::snapshot() const {
  if (!snapshot_valid_) {
    if (overlay_entries_ == 0) {
      snapshot_ = base_;
    } else {
      // Merge base minus removed plus added, per vertex; every per-vertex
      // list is sorted, so the merged runs are sorted and the CSR fast
      // path applies.
      // Vertices appended since the base was frozen have no base run.
      const Vertex base_n = base_.vertex_count();
      const auto base_neighbors = [&](Vertex v) {
        return v < base_n ? base_.neighbors(v) : std::span<const Vertex>{};
      };
      std::vector<std::size_t> offsets(static_cast<std::size_t>(n_) + 1, 0);
      for (Vertex v = 0; v < n_; ++v) {
        offsets[v + 1] = offsets[v] + base_neighbors(v).size() +
                         added_[v].size() - removed_[v].size();
      }
      std::vector<Vertex> adjacency(offsets.back());
      for (Vertex v = 0; v < n_; ++v) {
        auto out = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
        const auto& add = added_[v];
        const auto& rem = removed_[v];
        std::size_t ai = 0;
        for (Vertex w : base_neighbors(v)) {
          if (contains_sorted(rem, w)) continue;
          while (ai < add.size() && add[ai] < w) *out++ = add[ai++];
          *out++ = w;
        }
        while (ai < add.size()) *out++ = add[ai++];
      }
      snapshot_ = Graph::from_csr(std::move(offsets), std::move(adjacency));
    }
    snapshot_valid_ = true;
  }
  return snapshot_;
}

bool DynamicGraph::is_removable(Vertex u, Vertex v) const {
  MG_EXPECTS_MSG(has_edge(u, v), "edge not present");
  if (degree(u) <= 1 || degree(v) <= 1) return false;
  // BFS from u skipping {u, v}; the edge is removable iff v stays
  // reachable and the sweep still covers every vertex.
  std::vector<char> seen(n_, 0);
  std::vector<Vertex> stack{u};
  seen[u] = 1;
  Vertex covered = 1;
  const Graph& g = snapshot();
  while (!stack.empty()) {
    const Vertex x = stack.back();
    stack.pop_back();
    for (Vertex y : g.neighbors(x)) {
      if ((x == u && y == v) || (x == v && y == u)) continue;
      if (!seen[y]) {
        seen[y] = 1;
        ++covered;
        stack.push_back(y);
      }
    }
  }
  return covered == n_;
}

void DynamicGraph::invalidate_snapshot() { snapshot_valid_ = false; }

void DynamicGraph::maybe_collapse() {
  const std::size_t threshold =
      std::max(options_.collapse_min,
               base_.edge_count() * 2 / std::max<std::size_t>(
                                            options_.collapse_divisor, 1));
  if (overlay_entries_ > threshold) {
    collapse();
    ++stats_.collapses;
    MG_OBS_ADD("churn.graph.collapses", 1);
  }
}

void DynamicGraph::collapse() {
  if (overlay_entries_ == 0 && base_.vertex_count() == n_) return;
  base_ = snapshot();
  added_.assign(n_, {});
  removed_.assign(n_, {});
  overlay_entries_ = 0;
}

}  // namespace mg::graph
