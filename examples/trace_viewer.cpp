// Trace viewer: runs one gossip algorithm on a generated network, records
// both observability timelines this repo produces — the span tracer's
// wall-clock trace (exported as Chrome trace-event JSON for Perfetto /
// chrome://tracing) and the round-level gossip timeline (message classes,
// up/down direction and fault losses per round) — and renders an ASCII
// round x processor activity map in the terminal.
//
//   $ ./trace_viewer                                  # Petersen, ConcurrentUpDown
//   $ ./trace_viewer --graph cycle:9 --algorithm telephone
//   $ ./trace_viewer --drop-rate 0.2 --seed 7
//   $ ./trace_viewer --timeline-out timeline.json --trace-out trace.json
//   $ ./trace_viewer --model radio                    # model-cost rendering
//
// With --model the multicast schedule is legalized for the named
// communication model (model::adapt_schedule) and simulated under its
// delivery semantics: the viewer reports structural rounds, the model's
// round cost, model-time rounds (structural x round_cost) and — for the
// collision channels (radio/beep) — collided transmissions, which also
// surface as '!' cells in the activity map.
//
// For a fault-free ConcurrentUpDown run the viewer also checks Theorem 1:
// the timeline must span exactly n + r send rounds, and the exit status
// reports the verdict (CI uses this as the trace-export smoke gate).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "fault/fault.h"
#include "gossip/solve.h"
#include "gossip/timeline.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/comm_model.h"
#include "model/legalize.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "sim/network_sim.h"

namespace {

using namespace mg;

struct Options {
  std::string graph = "petersen";
  gossip::Algorithm algorithm = gossip::Algorithm::kConcurrentUpDown;
  double drop_rate = 0.0;
  std::uint64_t seed = 0x5eed;
  std::string timeline_out;
  std::string trace_out;
  const model::CommModel* comm = nullptr;  ///< nullptr = plain multicast
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--graph petersen|cycle:N|grid:RxC|hypercube:D]\n"
      "          [--algorithm simple|updown|concurrent-updown|telephone]\n"
      "          [--drop-rate P] [--seed N]\n"
      "          [--timeline-out FILE] [--trace-out FILE]\n"
      "          [--model multicast|telephone|radio|beep|direct]\n",
      argv0);
}

graph::Graph make_graph(const std::string& spec) {
  if (spec == "petersen") return graph::petersen();
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (family == "cycle") {
    return graph::cycle(static_cast<graph::Vertex>(std::stoul(arg)));
  }
  if (family == "grid") {
    const auto x = arg.find('x');
    if (x == std::string::npos) throw std::invalid_argument("grid wants RxC");
    return graph::grid(static_cast<graph::Vertex>(std::stoul(arg.substr(0, x))),
                       static_cast<graph::Vertex>(std::stoul(arg.substr(x + 1))));
  }
  if (family == "hypercube") {
    return graph::hypercube(static_cast<unsigned>(std::stoul(arg)));
  }
  throw std::invalid_argument("unknown graph family '" + family + "'");
}

gossip::Algorithm parse_algorithm(const std::string& name) {
  if (name == "simple") return gossip::Algorithm::kSimple;
  if (name == "updown") return gossip::Algorithm::kUpDown;
  if (name == "concurrent-updown") return gossip::Algorithm::kConcurrentUpDown;
  if (name == "telephone") return gossip::Algorithm::kTelephone;
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

const model::CommModel& parse_model(const std::string& name) {
  for (const model::CommModel* m : model::all_models()) {
    if (m->name() == name) return *m;
  }
  throw std::invalid_argument("unknown model '" + name + "'");
}

/// One character per activity-grid cell.
char cell_glyph(std::uint8_t flags) {
  if (flags & gossip::kActivityFault) return '!';
  const bool send = flags & gossip::kActivitySend;
  const bool receive = flags & gossip::kActivityReceive;
  if (send && receive) return 'B';
  if (send) return 'S';
  if (receive) return 'r';
  return '.';
}

void print_activity_map(const gossip::RoundTimeline& timeline) {
  const std::size_t time_units = timeline.rounds().size();
  const graph::Vertex n = timeline.processor_count();
  std::printf("activity map (rows = processors, cols = time units;\n"
              "  S send, r receive, B both, ! fault loss, . idle):\n");
  std::printf("      ");
  for (std::size_t t = 0; t < time_units; ++t) {
    std::printf("%c", t % 10 == 0 ? static_cast<char>('0' + (t / 10) % 10)
                                  : ' ');
  }
  std::printf("\n      ");
  for (std::size_t t = 0; t < time_units; ++t) {
    std::printf("%c", static_cast<char>('0' + t % 10));
  }
  std::printf("\n");
  for (graph::Vertex v = 0; v < n; ++v) {
    std::printf("P%-4u ", v);
    for (std::size_t t = 0; t < time_units; ++t) {
      std::printf("%c", cell_glyph(timeline.activity(t, v)));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag.c_str());
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--graph") {
        opt.graph = next();
      } else if (flag == "--algorithm") {
        opt.algorithm = parse_algorithm(next());
      } else if (flag == "--drop-rate") {
        opt.drop_rate = std::stod(next());
      } else if (flag == "--seed") {
        opt.seed = std::stoull(next());
      } else if (flag == "--timeline-out") {
        opt.timeline_out = next();
      } else if (flag == "--trace-out") {
        opt.trace_out = next();
      } else if (flag == "--model") {
        opt.comm = &parse_model(next());
      } else {
        usage(argv[0]);
        return flag == "--help" ? 0 : 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for %s: %s\n", flag.c_str(), e.what());
      return 2;
    }
  }

  graph::Graph network(0);
  try {
    network = make_graph(opt.graph);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--graph %s: %s\n", opt.graph.c_str(), e.what());
    return 2;
  }

  // Opt into span tracing for this run; everything solve_gossip and
  // simulate touch (tree build, algorithm, validation, the sim itself)
  // lands in the global tracer.
  obs::SpanTracer& tracer = obs::SpanTracer::global();
  tracer.set_enabled(true);

  const auto sol = gossip::solve_gossip(network, opt.algorithm);
  const graph::Vertex n = sol.instance.vertex_count();
  const std::uint32_t r = sol.instance.radius();

  gossip::RoundTimeline timeline(sol.instance);
  fault::FaultPlan plan;
  sim::SimOptions sim_options;
  sim_options.sink = &timeline;
  if (opt.drop_rate > 0.0) {
    plan.drop_rate(opt.drop_rate).seed(opt.seed);
    sim_options.faults = &plan;
  }
  // With --model, legalize the multicast schedule for the target model and
  // simulate under its delivery semantics (collision loss for radio/beep).
  const graph::Graph sim_graph = sol.instance.tree().as_graph();
  model::AdaptResult adapted;
  const model::Schedule* schedule = &sol.schedule;
  if (opt.comm != nullptr) {
    adapted = model::adapt_schedule(sim_graph, sol.schedule, *opt.comm);
    schedule = &adapted.schedule;
    sim_options.comm = opt.comm;
  }
  const sim::SimResult run =
      sim::simulate(sim_graph, *schedule, sol.instance.initial(), sim_options);
  tracer.set_enabled(false);

  std::printf("algorithm: %s on %s (n = %u, radius r = %u)\n",
              gossip::algorithm_name(opt.algorithm).c_str(),
              opt.graph.c_str(), n, r);
  std::printf("validation: %s\n",
              sol.report.ok ? "OK" : sol.report.error.c_str());
  std::printf("simulation: %s, total time %zu\n",
              run.completed ? "completed" : "incomplete", run.total_time);
  if (opt.comm != nullptr) {
    std::printf("model: %s -- %zu structural rounds x round cost %zu = "
                "%zu model rounds (stretch +%zu), %zu collided receives\n",
                opt.comm->name().c_str(), adapted.structural_rounds,
                opt.comm->round_cost(n), adapted.model_rounds,
                adapted.stretch, run.collided_receives);
  }
  if (opt.drop_rate > 0.0) {
    std::printf("faults: drop rate %.3f seed %llu -> %zu drops, "
                "%zu skipped, %zu lost\n",
                opt.drop_rate, static_cast<unsigned long long>(opt.seed),
                run.injected_drops, run.skipped_sends, run.lost_receives);
  }
  std::printf("timeline: %zu send rounds over %zu time units (n + r = %u)\n",
              timeline.send_rounds(), timeline.rounds().size(), n + r);

  const auto overlap = timeline.phase_overlap();
  std::printf("up/down overlap: %zu up rounds, %zu down rounds, "
              "%zu overlapped, %zu with any delivery\n\n",
              overlap.up_rounds, overlap.down_rounds, overlap.overlap_rounds,
              overlap.total_rounds);

  print_activity_map(timeline);

  if (!opt.timeline_out.empty()) {
    std::ofstream out(opt.timeline_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.timeline_out.c_str());
      return 2;
    }
    timeline.write_json(out);
    std::printf("\nround timeline written to %s\n", opt.timeline_out.c_str());
  }
  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.trace_out.c_str());
      return 2;
    }
    obs::write_chrome_trace(out, tracer);
    std::printf("chrome trace (%llu spans, %llu dropped) written to %s -- "
                "load it at ui.perfetto.dev or chrome://tracing\n",
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()),
                opt.trace_out.c_str());
  }

  // Theorem 1 gate: a fault-free ConcurrentUpDown timeline spans exactly
  // n + r rounds.  CI runs the viewer on the Petersen graph and relies on
  // this exit status.  Model-cost runs stretch the round count by design,
  // so the gate applies to the default (multicast) path only.
  if (opt.comm == nullptr &&
      opt.algorithm == gossip::Algorithm::kConcurrentUpDown &&
      opt.drop_rate == 0.0) {
    if (timeline.send_rounds() != static_cast<std::size_t>(n) + r) {
      std::fprintf(stderr,
                   "FAIL: expected n + r = %u send rounds, timeline has %zu\n",
                   n + r, timeline.send_rounds());
      return 1;
    }
    std::printf("\nTheorem 1 check: timeline spans exactly n + r rounds\n");
  }
  return sol.report.ok && run.completed ? 0 : 1;
}
