// Tests for the model validator: each communication rule of §1 must be
// enforced, and completion must be tracked correctly.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "model/validator.h"

namespace mg::model {
namespace {

using graph::path;

Schedule two_node_exchange() {
  Schedule s;
  s.add(0, {0, 0, {1}});
  s.add(0, {1, 1, {0}});
  return s;
}

TEST(Validator, AcceptsSimultaneousExchange) {
  const auto report = validate_schedule(path(2), two_node_exchange());
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.total_time, 1u);
  EXPECT_EQ(report.completion_time, (std::vector<std::size_t>{1, 1}));
}

TEST(Validator, RejectsTwoReceivesInOneRound) {
  // Both ends of a path send to the middle simultaneously.
  Schedule s;
  s.add(0, {0, 0, {1}});
  s.add(0, {2, 2, {1}});
  const auto report = validate_schedule(path(3), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("receives two messages"), std::string::npos);
}

TEST(Validator, RejectsTwoSendsInOneRound) {
  Schedule s;
  s.add(0, {1, 1, {0}});
  s.add(0, {1, 1, {2}});
  const auto report = validate_schedule(path(3), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("sends two messages"), std::string::npos);
}

TEST(Validator, AcceptsMulticastAsOneSend) {
  Schedule s;
  s.add(0, {1, 1, {0, 2}});  // one message to both neighbors
  ValidatorOptions options;
  options.require_completion = false;
  EXPECT_TRUE(validate_schedule(path(3), s, {}, options).ok);
}

TEST(Validator, RejectsNonAdjacentDelivery) {
  Schedule s;
  s.add(0, {0, 0, {2}});
  const auto report = validate_schedule(path(3), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("not adjacent"), std::string::npos);
}

TEST(Validator, RejectsSendingUnheldMessage) {
  Schedule s;
  s.add(0, {2, 0, {1}});  // processor 0 does not hold message 2
  const auto report = validate_schedule(path(3), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("does not hold"), std::string::npos);
}

TEST(Validator, ReceiveBeforeSendWithinRound) {
  // 0 -> 1 at t=0; 1 forwards the same message to 2 at t=1 (legal: it
  // arrives at time 1 and is sent at time 1).
  Schedule s;
  s.add(0, {0, 0, {1}});
  s.add(1, {0, 1, {2}});
  ValidatorOptions options;
  options.require_completion = false;
  EXPECT_TRUE(validate_schedule(path(3), s, {}, options).ok)
      << "forwarding on arrival must be legal";
}

TEST(Validator, RejectsForwardingBeforeArrival) {
  // 1 tries to forward message 0 in the same round it is being sent.
  Schedule s;
  s.add(0, {0, 0, {1}});
  s.add(0, {0, 1, {2}});
  const auto report = validate_schedule(path(3), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("does not hold"), std::string::npos);
}

TEST(Validator, RejectsSelfDelivery) {
  Schedule s;
  s.add(0, {0, 0, {0, 1}});
  const auto report = validate_schedule(path(2), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("self-delivery"), std::string::npos);
}

TEST(Validator, RejectsOutOfRangeIndices) {
  Schedule bad_sender;
  bad_sender.add(0, {0, 9, {1}});
  EXPECT_FALSE(validate_schedule(path(3), bad_sender).ok);

  Schedule bad_receiver;
  bad_receiver.add(0, {0, 0, {9}});
  EXPECT_FALSE(validate_schedule(path(3), bad_receiver).ok);

  Schedule bad_message;
  bad_message.add(0, {9, 0, {1}});
  EXPECT_FALSE(validate_schedule(path(3), bad_message).ok);
}

TEST(Validator, TelephoneVariantRejectsMulticast) {
  Schedule s;
  s.add(0, {1, 1, {0, 2}});
  ValidatorOptions options;
  options.variant = ModelVariant::kTelephone;
  options.require_completion = false;
  const auto report = validate_schedule(path(3), s, {}, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("telephone"), std::string::npos);
}

TEST(Validator, IncompletionReported) {
  Schedule s;
  s.add(0, {0, 0, {1}});  // processor 0 never receives message 1
  const auto report = validate_schedule(path(2), s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("missing messages"), std::string::npos);
}

TEST(Validator, CustomInitialAssignment) {
  // Swap the messages: processor 0 holds message 1 and vice versa; then a
  // single exchange completes gossip.
  Schedule s;
  s.add(0, {1, 0, {1}});
  s.add(0, {0, 1, {0}});
  const auto report = validate_schedule(path(2), s, {1, 0});
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(Validator, InitialAssignmentSizeChecked) {
  EXPECT_FALSE(validate_schedule(path(2), Schedule(), {0}).ok);
}

TEST(Validator, LineOfThreeCompletionTimes) {
  // A hand-built (valid, slightly suboptimal) P3 gossip; checks per-node
  // completion times and the forward-on-arrival semantics.
  Schedule s;
  s.add(0, {1, 1, {0, 2}});  // everyone has msg 1 at t=1
  s.add(1, {0, 0, {1}});     // center gets 0 at t=2
  s.add(2, {0, 1, {2}});     // forwarded on arrival; right gets 0 at t=3
  s.add(2, {2, 2, {1}});     // center gets 2 at t=3
  s.add(3, {2, 1, {0}});     // left gets 2 at t=4
  const auto report = validate_schedule(path(3), s);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.total_time, 4u);
  EXPECT_EQ(report.completion_time[1], 3u);
  EXPECT_EQ(report.completion_time[2], 3u);
  EXPECT_EQ(report.completion_time[0], 4u);
}

TEST(Validator, OptimalLineOfThreeAtLowerBound) {
  // §1: P3 needs n + r - 1 = 3 rounds; this schedule attains the bound.
  Schedule s;
  s.add(0, {1, 1, {0, 2}});
  s.add(0, {0, 0, {1}});
  s.add(1, {2, 2, {1}});
  s.add(1, {0, 1, {2}});
  s.add(2, {2, 1, {0}});
  const auto report = validate_schedule(path(3), s);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.total_time, 3u);
}

TEST(ValidatorBroadcast, AcceptsProperBroadcast) {
  Schedule s;
  s.add(0, {1, 1, {0, 2}});
  const auto report = validate_broadcast(path(3), s, 1);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(ValidatorBroadcast, RejectsForeignMessage) {
  Schedule s;
  s.add(0, {0, 0, {1}});
  EXPECT_FALSE(validate_broadcast(path(3), s, 1).ok);
}

TEST(ValidatorBroadcast, RejectsPartialCoverage) {
  Schedule s;
  s.add(0, {1, 1, {0}});
  const auto report = validate_broadcast(path(3), s, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("never receives"), std::string::npos);
}

}  // namespace
}  // namespace mg::model
