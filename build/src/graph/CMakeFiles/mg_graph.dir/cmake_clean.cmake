file(REMOVE_RECURSE
  "CMakeFiles/mg_graph.dir/enumeration.cpp.o"
  "CMakeFiles/mg_graph.dir/enumeration.cpp.o.d"
  "CMakeFiles/mg_graph.dir/generators.cpp.o"
  "CMakeFiles/mg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mg_graph.dir/graph.cpp.o"
  "CMakeFiles/mg_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mg_graph.dir/hamiltonian.cpp.o"
  "CMakeFiles/mg_graph.dir/hamiltonian.cpp.o.d"
  "CMakeFiles/mg_graph.dir/interconnect.cpp.o"
  "CMakeFiles/mg_graph.dir/interconnect.cpp.o.d"
  "CMakeFiles/mg_graph.dir/io.cpp.o"
  "CMakeFiles/mg_graph.dir/io.cpp.o.d"
  "CMakeFiles/mg_graph.dir/named.cpp.o"
  "CMakeFiles/mg_graph.dir/named.cpp.o.d"
  "CMakeFiles/mg_graph.dir/product.cpp.o"
  "CMakeFiles/mg_graph.dir/product.cpp.o.d"
  "CMakeFiles/mg_graph.dir/properties.cpp.o"
  "CMakeFiles/mg_graph.dir/properties.cpp.o.d"
  "libmg_graph.a"
  "libmg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
