// The paper's concrete example networks: N1 (Fig. 1), N2 (Fig. 2, the
// Petersen graph), an N3-class witness (Fig. 3), and the running example of
// Fig. 4 whose minimum-depth spanning tree with DFS labels is Fig. 5.
//
// Figs. 3 and 4 exist only as images in the original.  Fig. 4/5 is
// reconstructed exactly from Tables 1-4 and the surrounding prose (see
// DESIGN.md); for Fig. 3 we provide constructed witnesses with the same
// stated properties (no Hamiltonian circuit, yet multicast gossiping
// completes in n-1 rounds while the telephone model cannot), certified by
// the exact-search module.
#pragma once

#include "graph/graph.h"

namespace mg::graph {

/// Fig. 1 network N1: a Hamiltonian circuit (drawn with n = 8); gossiping
/// completes in the optimal n - 1 rounds by rotating along the circuit.
[[nodiscard]] Graph n1_cycle(Vertex n = 8);

/// Fig. 2 network N2: the Petersen graph (n = 10, 3-regular, radius 2).
/// Gossiping is possible in n - 1 = 9 rounds even under the telephone
/// model, although the graph has no Hamiltonian circuit.
[[nodiscard]] Graph petersen();

/// Fig. 3 class witness: a graph with no Hamiltonian circuit on which
/// multicast gossiping completes in n - 1 rounds but telephone gossiping
/// cannot (certified by `gossip::exact_search` in the test suite and the
/// fig3 bench).  This is K4 plus two pendant vertices attached to disjoint
/// clique vertices (n = 6): the two degree-1 vertices rule out a
/// Hamiltonian circuit, and a degree-1 vertex must receive a (new) message
/// in every one of the n - 1 rounds from its only neighbor.
[[nodiscard]] Graph n3_witness();

/// Fig. 4 running-example network: 16 processors, radius 3, whose
/// minimum-depth spanning tree (rooted at the center, children in index
/// order) is exactly the Fig. 5 tree.  Processor ids coincide with the
/// Fig. 5 DFS message labels; cross edges are within-level so the BFS tree
/// is unambiguous.
[[nodiscard]] Graph fig4_network();

/// The Fig. 5 tree itself (the minimum-depth spanning tree of Fig. 4) as a
/// free graph; vertex id == DFS message label.
[[nodiscard]] Graph fig5_tree();

}  // namespace mg::graph
