file(REMOVE_RECURSE
  "CMakeFiles/interconnect_gossip.dir/interconnect_gossip.cpp.o"
  "CMakeFiles/interconnect_gossip.dir/interconnect_gossip.cpp.o.d"
  "interconnect_gossip"
  "interconnect_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
