# Empty compiler generated dependencies file for fig2_petersen.
# This may be replaced when dependencies are built.
