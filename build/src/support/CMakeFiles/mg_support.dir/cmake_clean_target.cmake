file(REMOVE_RECURSE
  "libmg_support.a"
)
