// Streaming 64-bit structural fingerprints.
//
// `Fingerprint64` hashes a sequence of 64-bit words into one digest using
// the SplitMix64 finalizer as the mixing function.  The digest depends on
// every word, on each word's *position* in the stream, and on the stream
// length, so two different canonical encodings practically never collide
// (the engine's schedule cache keys on these digests; see
// `engine::graph_fingerprint`, which streams a graph's CSR adjacency
// structure).  Header-only and allocation-free; not cryptographic.
#pragma once

#include <cstdint>

namespace mg {

/// Accumulates 64-bit words into a position-dependent 64-bit digest.
class Fingerprint64 {
 public:
  /// Optionally domain-separate streams with a caller-chosen seed.
  explicit constexpr Fingerprint64(std::uint64_t seed = 0x6d67676f73736970ULL)
      : state_(mix(seed ^ kGamma)) {}

  /// Feeds one word; order and multiplicity both matter.
  constexpr void update(std::uint64_t word) {
    ++count_;
    state_ = mix(state_ ^ mix(word + count_ * kGamma));
  }

  /// Digest over everything fed so far (also covers the stream length).
  [[nodiscard]] constexpr std::uint64_t digest() const {
    return mix(state_ ^ count_);
  }

 private:
  // Weyl constant of SplitMix64 (Steele, Lea & Flood).
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  /// SplitMix64 finalizer: bijective on 64-bit words, strong avalanche.
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
  std::uint64_t count_ = 0;
};

}  // namespace mg
