# Empty compiler generated dependencies file for pipelined_gossip.
# This may be replaced when dependencies are built.
