// Minimal recursive-descent JSON parser shared by the test binaries.
//
// Per the no-external-dependency rule the repo's JSON emitters are checked
// by round-tripping through this parser rather than by eyeball.  It covers
// exactly the grammar obs::JsonWriter can produce: strings (with escape
// sequences), numbers, bools, null, and nested objects/arrays.  Parse
// failures surface as gtest failures at the point of the mismatch.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mg::testjson {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue& at(const std::string& k) const {
    const auto it = object.find(k);
    EXPECT_NE(it, object.end()) << "missing key " << k;
    static const JsonValue kNullValue;
    return it == object.end() ? kNullValue : it->second;
  }
  std::uint64_t as_u64() const {
    EXPECT_EQ(kind, Kind::kNumber);
    return static_cast<std::uint64_t>(number);
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage after JSON document";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  bool consume_if(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_literal(c == 't');
    if (c == 'n') {
      match("null");
      return {};
    }
    return parse_number();
  }

  void match(std::string_view word) {
    skip_ws();
    ASSERT_LE(pos_ + word.size(), text_.size());
    EXPECT_EQ(text_.substr(pos_, word.size()), word);
    pos_ += word.size();
  }

  JsonValue parse_literal(bool value) {
    match(value ? "true" : "false");
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = value;
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number";
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        ADD_FAILURE() << "dangling escape at end of input";
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ADD_FAILURE() << "truncated \\u escape";
            return out;
          }
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
          pos_ += 4;
          EXPECT_LT(code, 0x80u) << "writer only escapes control chars";
          out += static_cast<char>(code);
          break;
        }
        default:
          ADD_FAILURE() << "unknown escape \\" << esc;
      }
    }
    expect('"');
    return out;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume_if('}')) return v;
    do {
      std::string key = parse_string();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
    } while (consume_if(','));
    expect('}');
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume_if(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume_if(','));
    expect(']');
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace mg::testjson
