// Observability primitives: monotonic counters, accumulating timers, and
// log-bucketed latency histograms.
//
// All are thread-safe (relaxed atomics — metrics need no ordering
// guarantees) and trivially cheap: an enabled counter increment is one
// relaxed fetch_add, a histogram record is two fetch_adds plus a bucket
// increment, and a disabled one (see registry.h) lands on a shared scratch
// cell without ever taking a lock or allocating.  All hot-path
// instrumentation goes through the MG_OBS_* macros in registry.h so it can
// also be compiled out entirely.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/stopwatch.h"

namespace mg::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulating wall-clock timer: total nanoseconds across `count` spans.
class Timer {
 public:
  void record_ns(std::uint64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Point-in-time summary of a Histogram (see Histogram::snapshot()).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  /// Non-empty buckets as (inclusive upper bound, count), ascending — the
  /// raw (non-cumulative) counts the Prometheus exposition accumulates
  /// into its monotone `le` series.  The last representable bucket's
  /// upper bound is UINT64_MAX (the "+Inf" bucket).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Thread-safe log-bucketed value histogram (HdrHistogram-style).
///
/// Values land in power-of-two octaves split into 8 sub-buckets, so any
/// recorded value is off from its bucket's lower bound by at most 1/8 of
/// itself (12.5% relative quantile error); values below 8 are exact.
/// Recording is lock-free: one relaxed fetch_add per bucket plus count/sum
/// accumulators and CAS-maintained exact min/max, making the histogram safe
/// on hot paths shared by many threads.  Quantiles are computed on demand
/// by a bucket scan and clamped into [min, max], so single-value and
/// boundary-value distributions report exactly.
class Histogram {
 public:
  static constexpr std::size_t kSubBits = 3;                // 8 sub-buckets
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  // Octaves 3..63 carry kSubBuckets buckets each; values 0..7 are exact.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;

  /// Bucket holding `value`; exact below kSubBuckets, log-spaced above.
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const auto exponent =
        static_cast<std::size_t>(std::bit_width(value)) - 1;  // >= kSubBits
    const auto sub = static_cast<std::size_t>(
        (value >> (exponent - kSubBits)) & (kSubBuckets - 1));
    return (exponent - kSubBits + 1) * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `index` (the bucket's lower bound).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower_bound(
      std::size_t index) {
    if (index < 2 * kSubBuckets) return index;  // octave 3 is still exact
    const std::size_t exponent = index / kSubBuckets + kSubBits - 1;
    const std::uint64_t sub = index % kSubBuckets;
    return (kSubBuckets + sub) << (exponent - kSubBits);
  }

  /// Largest value mapping to bucket `index` (inclusive, so Prometheus
  /// `le` bounds come straight from it); UINT64_MAX for the last bucket.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(
      std::size_t index) {
    if (index + 1 >= kBucketCount) return ~std::uint64_t{0};
    return bucket_lower_bound(index + 1) - 1;
  }

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Consistent-enough summary under concurrent recording: quantiles are
  /// ranked against the bucket total seen by this scan, not `count()`.
  [[nodiscard]] HistogramSnapshot snapshot() const {
    std::array<std::uint64_t, kBucketCount> copy{};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      copy[i] = buckets_[i].load(std::memory_order_relaxed);
      total += copy[i];
    }
    HistogramSnapshot snap;
    snap.count = total;
    if (total == 0) return snap;
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    snap.p50 = quantile_from(copy, total, 0.50);
    snap.p90 = quantile_from(copy, total, 0.90);
    snap.p99 = quantile_from(copy, total, 0.99);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (copy[i] != 0) snap.buckets.emplace_back(bucket_upper_bound(i), copy[i]);
    }
    return snap;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_min(std::uint64_t value) {
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  void update_max(std::uint64_t value) {
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t quantile_from(
      const std::array<std::uint64_t, kBucketCount>& buckets,
      std::uint64_t total, double q) const {
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total) + 0.5);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += buckets[i];
      if (cumulative >= target && buckets[i] != 0) {
        const std::uint64_t lo = bucket_lower_bound(i);
        const std::uint64_t lo_min = min_.load(std::memory_order_relaxed);
        const std::uint64_t hi_max = max_.load(std::memory_order_relaxed);
        return std::min(std::max(lo, lo_min), hi_max);
      }
    }
    return max_.load(std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII span: records the elapsed wall time into a Timer on destruction.
class ScopeTimer {
 public:
  explicit ScopeTimer(Timer& timer) : timer_(&timer) {}
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  ~ScopeTimer() {
    timer_->record_ns(static_cast<std::uint64_t>(watch_.seconds() * 1e9));
  }

 private:
  Timer* timer_;
  Stopwatch watch_;
};

/// RAII span: records the elapsed wall time (ns) into a Histogram on
/// destruction — the per-request quantile companion to ScopeTimer.
class ScopeHist {
 public:
  explicit ScopeHist(Histogram& histogram) : histogram_(&histogram) {}
  ScopeHist(const ScopeHist&) = delete;
  ScopeHist& operator=(const ScopeHist&) = delete;

  ~ScopeHist() {
    histogram_->record(static_cast<std::uint64_t>(watch_.seconds() * 1e9));
  }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace mg::obs
