// Cartesian graph products.  Grids, tori and hypercubes are products of
// paths, cycles and K_2 respectively; products let tests cross-validate the
// generators and give closed-form radii (eccentricities add under the
// Cartesian product), which the tree substrate's metrics must reproduce.
#pragma once

#include "graph/graph.h"

namespace mg::graph {

/// Cartesian product G x H: vertex (g, h) has id g * |H| + h; (g1,h1) ~
/// (g2,h2) iff (g1==g2 and h1~h2) or (h1==h2 and g1~g2).
[[nodiscard]] Graph cartesian_product(const Graph& g, const Graph& h);

/// Vertex id of (g, h) in `cartesian_product(G, H)`.
[[nodiscard]] constexpr Vertex product_vertex(Vertex g, Vertex h,
                                              Vertex h_count) {
  return g * h_count + h;
}

}  // namespace mg::graph
