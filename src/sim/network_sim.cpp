#include "sim/network_sim.h"

#include <algorithm>

#include "obs/registry.h"
#include "obs/span.h"
#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::sim {

namespace {

/// Shared execution core.  `hold` is the time-0 knowledge state (one bitset
/// of `message_count` bits per node); completion means every node holds all
/// `message_count` messages.
SimResult run_simulation(const graph::Graph& g,
                         const model::Schedule& schedule,
                         std::vector<DynamicBitset> hold,
                         std::size_t message_count,
                         const SimOptions& options) {
  MG_OBS_SPAN(sim_span, "sim.simulate");
  MG_OBS_SCOPE_HIST(sim_hist, "sim.run_ns");
  const Vertex n = g.vertex_count();
  MG_EXPECTS(hold.size() == n);
  SimResult result;
  result.completion_time.assign(n, 0);
  result.missing.assign(n, 0);

  // Fault sources: the legacy (round, sender) list folds into an O(1) hash
  // set — one lookup per scheduled transmission, however many faults the
  // plan carries — and a FaultPlan supplies the richer models.  Plan
  // queries use absolute rounds (offset + local round) so recovery runs
  // experience the same fabric the base run did.
  fault::DropSet legacy_drops;
  for (const auto& [round, sender] : options.drop) {
    legacy_drops.insert(round, sender);
  }
  const fault::FaultPlan* plan =
      options.faults != nullptr && !options.faults->empty() ? options.faults
                                                            : nullptr;
  const std::size_t offset = options.fault_round_offset;

  std::vector<std::size_t> known(n, 0);
  std::size_t total_known = 0;
  for (Vertex v = 0; v < n; ++v) {
    known[v] = hold[v].count();
    total_known += known[v];
  }

  const std::size_t rounds = schedule.round_count();
  const std::size_t horizon =
      rounds + (plan != nullptr ? plan->max_extra_delay() : 0);

  // Deliveries land at send round + 1 + edge delay (receive-before-send):
  // buffer arrivals by time and apply them before that round's sends.
  std::vector<std::vector<std::pair<Vertex, Message>>> in_flight(horizon + 1);
  auto apply_arrivals = [&](std::size_t receive_time) {
    for (const auto& [r, m] : in_flight[receive_time]) {
      if (!hold[r].test(m)) {
        hold[r].set(m);
        ++known[r];
        ++total_known;
        if (known[r] == message_count) {
          result.completion_time[r] = receive_time;
        }
      }
    }
    in_flight[receive_time].clear();
  };

  std::uint64_t deliveries = 0;
  result.knowledge.push_back(total_known);  // state at time 0
  for (std::size_t t = 0; t < rounds; ++t) {
    if (t > 0) {
      apply_arrivals(t);
      result.knowledge.push_back(total_known);  // state at time t
    }
    const std::size_t abs_t = offset + t;
    for (const auto& tx : schedule.round(t)) {
      const Vertex first_receiver =
          tx.receivers.empty() ? tx.sender : tx.receivers.front();
      if (plan != nullptr && plan->crashed(tx.sender, abs_t)) {
        ++result.crashed_sends;
        if (options.sink != nullptr) {
          options.sink->on_event({"crash", t, tx.sender, tx.message,
                                  first_receiver, tx.receivers.size()});
        }
        continue;
      }
      if (legacy_drops.contains(t, tx.sender) ||
          (plan != nullptr && plan->drops(abs_t, tx.sender))) {
        ++result.injected_drops;
        if (options.sink != nullptr) {
          options.sink->on_event({"drop", t, tx.sender, tx.message,
                                  first_receiver, tx.receivers.size()});
        }
        continue;
      }
      if (!hold[tx.sender].test(tx.message)) {
        ++result.skipped_sends;  // fault cascade: nothing to forward
        if (options.sink != nullptr) {
          options.sink->on_event({"skip", t, tx.sender, tx.message,
                                  first_receiver, tx.receivers.size()});
        }
        continue;
      }
      if (options.record_trace) {
        result.trace.push_back(
            {SimEvent::Kind::kSend, t, tx.sender, tx.message, first_receiver});
      }
      if (options.sink != nullptr) {
        options.sink->on_event({"send", t, tx.sender, tx.message,
                                first_receiver, tx.receivers.size()});
      }
      for (Vertex r : tx.receivers) {
        const std::size_t arrival =
            t + 1 +
            (plan != nullptr ? plan->extra_delay(tx.sender, r) : 0);
        if (plan != nullptr && plan->crashed(r, offset + arrival)) {
          ++result.lost_receives;  // receiver dead (or dies in flight)
          if (options.sink != nullptr) {
            options.sink->on_event(
                {"lost", arrival, r, tx.message, tx.sender, 0});
          }
          continue;
        }
        result.total_time = std::max(result.total_time, arrival);
        if (options.record_trace) {
          result.trace.push_back(
              {SimEvent::Kind::kReceive, arrival, r, tx.message, tx.sender});
        }
        if (options.sink != nullptr) {
          options.sink->on_event({"receive", arrival, r, tx.message,
                                  tx.sender, 0});
        }
        ++deliveries;
        in_flight[arrival].emplace_back(r, tx.message);
      }
    }
  }
  // Drain: arrivals at and past the last send round (delays can push the
  // final deliveries past the schedule's own horizon).
  for (std::size_t t = std::max<std::size_t>(rounds, 1); t <= horizon; ++t) {
    apply_arrivals(t);
    result.knowledge.push_back(total_known);  // state at time t
  }

  result.completed = true;
  for (Vertex v = 0; v < n; ++v) {
    result.missing[v] = message_count - known[v];
    if (result.missing[v] != 0) result.completed = false;
  }
  result.final_holds = std::move(hold);

  MG_OBS_ADD("sim.runs", 1);
  MG_OBS_ADD("sim.deliveries", deliveries);
  MG_OBS_ADD("sim.dropped_transmissions", result.injected_drops);
  MG_OBS_ADD("sim.skipped_sends", result.skipped_sends);
  if (result.injected_drops > 0) {
    MG_OBS_ADD("fault.injected_drops", result.injected_drops);
  }
  if (plan != nullptr && plan->has_crashes()) {
    MG_OBS_ADD("fault.crashes", plan->crashes_before(offset + rounds));
  }
  if (result.completed && !result.completion_time.empty()) {
    MG_OBS_ADD("sim.completion_round",
               *std::max_element(result.completion_time.begin(),
                                 result.completion_time.end()));
  }
  return result;
}

}  // namespace

SimResult simulate(const graph::Graph& g, const model::Schedule& schedule,
                   const std::vector<Message>& initial,
                   const SimOptions& options) {
  const Vertex n = g.vertex_count();
  std::vector<Message> origin(initial);
  if (origin.empty()) {
    origin.resize(n);
    for (Vertex v = 0; v < n; ++v) origin[v] = v;
  }
  MG_EXPECTS(origin.size() == n);
  std::vector<DynamicBitset> hold(n, DynamicBitset(n));
  for (Vertex v = 0; v < n; ++v) hold[v].set(origin[v]);
  return run_simulation(g, schedule, std::move(hold), n, options);
}

SimResult simulate_from_holds(const graph::Graph& g,
                              const model::Schedule& schedule,
                              const std::vector<DynamicBitset>& initial_holds,
                              const SimOptions& options) {
  const Vertex n = g.vertex_count();
  MG_EXPECTS(initial_holds.size() == n);
  const std::size_t message_count = n == 0 ? 0 : initial_holds[0].size();
  for (const auto& h : initial_holds) MG_EXPECTS(h.size() == message_count);
  return run_simulation(g, schedule, initial_holds, message_count, options);
}

}  // namespace mg::sim
