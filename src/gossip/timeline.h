// Round-level gossip timeline profiler.
//
// `RoundTimeline` is an `obs::TraceSink` that folds the simulator's event
// stream into one tally per time unit, interpreted through the instance's
// tree and DFS labeling so every send is attributed to the paper's §3.2
// message taxonomy:
//
//  * sender-relative class of the transmitted message — s (the sender's
//    own start message), l (lookahead i+1), r (remaining i+2..j) or
//    o (originating outside the sender's subtree);
//  * parent-relative class — lip / rip — for non-root senders moving a
//    message of their own subtree;
//  * delivery direction on the tree — up (receiver is the sender's
//    parent) or down (receiver is a child) — which is what makes the
//    ConcurrentUpDown phase overlap (Theorem 1's n + r) visible round by
//    round;
//  * fault losses per round: injected drops, crashed senders, skipped
//    sends (the drop cascade) and deliveries lost to dead receivers.
//
// It also keeps a round × processor activity grid (send / receive / fault
// flags per cell) for the ASCII map `examples/trace_viewer` renders, and
// exports everything as a machine-readable timeline JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "gossip/instance.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace mg::gossip {

using tree::Vertex;

/// Per-time-unit tallies.  Sends (and their classes, and fault losses) are
/// indexed by the round the transmission was scheduled in; receives (and
/// their up/down direction) by the time unit the delivery arrived.
struct RoundTally {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  // Sender-relative class of each sent message (sums to `sends`).
  std::uint64_t s_sends = 0;
  std::uint64_t l_sends = 0;
  std::uint64_t r_sends = 0;
  std::uint64_t o_sends = 0;
  // Parent-relative class (non-root senders of own-subtree messages only).
  std::uint64_t lip_sends = 0;
  std::uint64_t rip_sends = 0;
  // Tree direction of each delivery (up + down == receives on a tree).
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  // Fault losses attributed to this round.
  std::uint64_t drops = 0;
  std::uint64_t crashed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t lost = 0;
  // Deliveries destroyed by receiver-side collisions (collision-loss
  // communication models only; attributed to the send round — a collision
  // is a channel event, see sim::SimOptions::comm).
  std::uint64_t collided = 0;
};

/// Activity-grid cell flags (bitwise-or'd).
enum : std::uint8_t {
  kActivitySend = 1,
  kActivityReceive = 2,
  kActivityFault = 4,
};

class RoundTimeline final : public obs::TraceSink {
 public:
  /// Interprets events against `instance` (kept by reference — it must
  /// outlive the sink).  Pass the same instance whose schedule you are
  /// simulating; message ids in the event stream are its DFS labels.
  explicit RoundTimeline(const Instance& instance);

  void on_event(const obs::TraceEvent& event) override;

  /// One tally per time unit, index 0 .. latest time observed.
  [[nodiscard]] const std::vector<RoundTally>& rounds() const {
    return rounds_;
  }

  /// Number of rounds that scheduled at least one send — the timeline's
  /// round count (n + r for a fault-free ConcurrentUpDown run, Theorem 1).
  [[nodiscard]] std::size_t send_rounds() const;

  /// Activity flags of processor `v` at time `t` (0 when out of range).
  [[nodiscard]] std::uint8_t activity(std::size_t t, Vertex v) const;

  [[nodiscard]] Vertex processor_count() const { return n_; }

  /// Up/down phase structure over the delivery timeline.
  struct PhaseOverlap {
    std::size_t up_rounds = 0;       ///< time units with an up delivery
    std::size_t down_rounds = 0;     ///< time units with a down delivery
    std::size_t overlap_rounds = 0;  ///< time units with both
    std::size_t total_rounds = 0;    ///< time units with any delivery
  };
  [[nodiscard]] PhaseOverlap phase_overlap() const;

  /// Writes the timeline as one JSON object value:
  /// {schema_version, n, send_rounds, time_units, totals{...},
  ///  overlap{...}, rounds:[{t, sends, receives, classes{s,l,r,o,lip,rip},
  ///  up, down, faults{drops,crashed,skipped,lost}}, ...]}.  When the run
  ///  observed receiver-side collisions (collision-loss communication
  ///  models), totals and faults additionally carry "collided"; the field
  ///  is omitted otherwise so default-model timelines are unchanged.
  /// Usable nested (after writer.key(...)) or as a document root.
  void write_json(obs::JsonWriter& w) const;
  void write_json(std::ostream& out) const;

 private:
  RoundTally& tally_at(std::size_t t);
  std::uint8_t& cell_at(std::size_t t, Vertex v);

  const Instance* instance_;
  Vertex n_;
  std::vector<RoundTally> rounds_;
  std::vector<std::uint8_t> grid_;  // rounds_.size() x n_, row-major
};

}  // namespace mg::gossip
