// §3.2 message taxonomy.  Relative to a non-root vertex v whose subtree
// holds messages [i, j] and whose parent's subtree holds [i', j']:
//
//   * o-messages: 0..i-1 and j+1..n-1 (originating elsewhere);
//   * b-messages: i..j, partitioned w.r.t. v into the starting message i
//     (s-message), the lookahead message i+1 (l-message, when i+1 <= j) and
//     the remaining messages i+2..j (r-messages);
//   * b-messages are also partitioned w.r.t. v's parent: message i is the
//     lookahead-in-parent (lip) message when i = i' + 1, and messages
//     max{i, i'+2}..j are the remaining-in-parent (rip) messages.
//
// The root's messages are labeled with i = 0: 1 is the l-message, 2..n-1
// are r-messages, all are rip-messages and there is no lip-message.
#pragma once

#include <cstdint>

#include "tree/labeling.h"

namespace mg::gossip {

using tree::DfsLabeling;
using tree::Label;
using tree::RootedTree;
using tree::Vertex;

/// Role of a message relative to a vertex v.
enum class Role : std::uint8_t {
  kOther,      ///< o-message: originates outside v's subtree
  kStart,      ///< s-message: v's own message i
  kLookahead,  ///< l-message: i + 1 (when v is not a leaf)
  kRemaining,  ///< r-messages: i + 2 .. j
};

/// Classifies message `m` relative to vertex `v`.
[[nodiscard]] Role classify(const DfsLabeling& labels, Vertex v, Label m);

/// True when `m` is the lip-message of non-root `v`: m == i and i == i'+1.
[[nodiscard]] bool is_lip(const RootedTree& tree, const DfsLabeling& labels,
                          Vertex v, Label m);

/// True when `m` is a rip-message of non-root `v`: max{i, i'+2} <= m <= j.
[[nodiscard]] bool is_rip(const RootedTree& tree, const DfsLabeling& labels,
                          Vertex v, Label m);

}  // namespace mg::gossip
