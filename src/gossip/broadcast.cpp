#include "gossip/broadcast.h"

#include "tree/spanning_tree.h"

namespace mg::gossip {

model::Schedule multicast_broadcast(const graph::Graph& g,
                                    graph::Vertex source) {
  // The offline tie-break (each receiver picks one of its possible senders)
  // is exactly a BFS tree: v receives from its BFS parent at time level(v).
  const auto bfs = tree::bfs_tree(g, source);
  model::Schedule schedule;
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    if (bfs.is_leaf(v)) continue;
    const auto kids = bfs.children(v);
    schedule.add(bfs.level(v), {source, v, {kids.begin(), kids.end()}});
  }
  schedule.trim();
  return schedule;
}

}  // namespace mg::gossip
