#include "model/schedule.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "support/contracts.h"

namespace mg::model {

void Schedule::add(std::size_t t, Transmission tx) {
  MG_EXPECTS_MSG(!tx.receivers.empty(), "transmission must have receivers");
  MG_EXPECTS_MSG(std::is_sorted(tx.receivers.begin(), tx.receivers.end()),
                 "receiver set must be sorted");
  MG_EXPECTS_MSG(std::adjacent_find(tx.receivers.begin(),
                                    tx.receivers.end()) == tx.receivers.end(),
                 "receiver set must be duplicate-free");
  if (t >= rounds_.size()) rounds_.resize(t + 1);
  rounds_[t].push_back(std::move(tx));
}

void Schedule::trim() {
  while (!rounds_.empty() && rounds_.back().empty()) rounds_.pop_back();
}

void Schedule::append(const Schedule& tail, std::size_t offset) {
  const std::size_t wanted = offset + tail.round_count();
  if (wanted > rounds_.size()) rounds_.resize(wanted);
  for (std::size_t t = 0; t < tail.round_count(); ++t) {
    const Round& src = tail.round(t);
    Round& dst = rounds_[offset + t];
    dst.insert(dst.end(), src.begin(), src.end());
  }
}

std::size_t Schedule::total_time() const {
  for (std::size_t t = rounds_.size(); t > 0; --t) {
    if (!rounds_[t - 1].empty()) return t;
  }
  return 0;
}

std::size_t Schedule::transmission_count() const {
  std::size_t total = 0;
  for (const auto& round : rounds_) total += round.size();
  return total;
}

std::size_t Schedule::delivery_count() const {
  std::size_t total = 0;
  for (const auto& round : rounds_) {
    for (const auto& tx : round) total += tx.receivers.size();
  }
  return total;
}

std::size_t Schedule::max_fanout() const {
  std::size_t fanout = 0;
  for (const auto& round : rounds_) {
    for (const auto& tx : round) {
      fanout = std::max(fanout, tx.receivers.size());
    }
  }
  return fanout;
}

bool Schedule::is_telephone() const {
  for (const auto& round : rounds_) {
    for (const auto& tx : round) {
      if (tx.receivers.size() != 1) return false;
    }
  }
  return true;
}

bool equivalent(const Schedule& a, const Schedule& b) {
  const std::size_t rounds = std::max(a.round_count(), b.round_count());
  auto normalized = [](const Schedule& s, std::size_t t) {
    std::vector<std::tuple<Vertex, Message, std::vector<Vertex>>> round;
    if (t < s.round_count()) {
      for (const auto& tx : s.round(t)) {
        round.emplace_back(tx.sender, tx.message, tx.receivers);
      }
    }
    std::sort(round.begin(), round.end());
    return round;
  };
  for (std::size_t t = 0; t < rounds; ++t) {
    if (normalized(a, t) != normalized(b, t)) return false;
  }
  return true;
}

std::string Schedule::to_string() const {
  std::ostringstream out;
  for (std::size_t t = 0; t < rounds_.size(); ++t) {
    if (rounds_[t].empty()) continue;
    out << "t=" << t << ":";
    for (const auto& tx : rounds_[t]) {
      out << "  msg " << tx.message << ": " << tx.sender << " -> {";
      for (std::size_t r = 0; r < tx.receivers.size(); ++r) {
        out << (r ? ", " : "") << tx.receivers[r];
      }
      out << "}";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace mg::model
