// Randomized rumor spreading under the paper's receive-capacity model —
// the online/decentralized baseline from the related work (the paper cites
// Feige, Peleg, Raghavan & Upfal's randomized broadcast [6]).
//
// Protocol per round (PUSH, optionally PULL):
//   * every processor picks a uniformly random neighbor and offers one
//     uniformly random held message (what the target lacks is unknown to
//     it).  The `push_newest` variant offers the most recently learned
//     message instead — tempting but INCOMPLETE: once everything is "old"
//     at every holder, coverage gaps can persist forever (a test
//     demonstrates the stall);
//   * the model's rule 1 bites: a processor offered several messages in
//     one round RECEIVES ONLY ONE (uniformly chosen); the rest are lost —
//     exactly the collision behaviour of single-frequency wireless
//     receivers (§2's motivation).
//
// No global schedule exists; the protocol runs until every processor knows
// everything (or `round_limit`).  Contrast with the deterministic n + r
// schedule in bench/randomized_vs_scheduled.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace mg::sim {

struct RandomizedOptions {
  bool pull = false;        ///< also request a message from a random neighbor
  bool push_newest = false;  ///< newest-first offers (may stall!)
  std::size_t round_limit = 1'000'000;
};

struct RandomizedResult {
  bool completed = false;
  std::size_t rounds = 0;          ///< rounds until global completion
  std::size_t transmissions = 0;   ///< offers actually delivered
  std::size_t collisions = 0;      ///< offers lost to rule 1
  std::size_t useless = 0;         ///< delivered but already known
};

/// Runs randomized gossip on a connected graph (processor v starts with
/// message v) until completion or the round limit.
[[nodiscard]] RandomizedResult randomized_gossip(const graph::Graph& g,
                                                 Rng& rng,
                                                 const RandomizedOptions&
                                                     options = {});

}  // namespace mg::sim
