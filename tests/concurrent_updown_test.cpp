// Tests for the paper's main result: algorithm ConcurrentUpDown and its
// components Propagate-Up (Lemma 2) and Propagate-Down (Lemma 3).
#include <gtest/gtest.h>

#include "gossip/bounds.h"
#include "gossip/concurrent_updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/rng.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

Instance fig4_instance() {
  return Instance::from_network(graph::fig4_network());
}

TEST(ConcurrentUpDown, TheoremOneOnFig4) {
  const auto instance = fig4_instance();
  const auto schedule = concurrent_updown(instance);
  test::expect_valid_gossip(instance, schedule);
  EXPECT_EQ(schedule.total_time(), 16u + 3u);  // n + r exactly
}

TEST(ConcurrentUpDown, TheoremOneAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 4u, 7u, 12u}) {
      const auto g = family.make(knob);
      const auto instance = Instance::from_network(g);
      const auto schedule = concurrent_updown(instance);
      const auto report = test::expect_valid_gossip(instance, schedule);
      ASSERT_TRUE(report.ok) << family.name << " knob=" << knob;
      EXPECT_EQ(schedule.total_time(),
                concurrent_updown_time(g.vertex_count(), instance.radius()))
          << family.name << " knob=" << knob;
    }
  }
}

TEST(PropagateUp, LemmaTwoRootReceivesEverythingOnTime) {
  // Lemma 2: the root receives message 1 at time 1 (U1) and messages
  // 2..n-1 sequentially at times 2..n-1 (U2).
  const auto instance = fig4_instance();
  const auto up = propagate_up(instance);
  const auto root = instance.tree().root();
  std::vector<std::size_t> arrival(16, SIZE_MAX);
  for (std::size_t t = 0; t < up.round_count(); ++t) {
    for (const auto& tx : up.round(t)) {
      for (graph::Vertex r : tx.receivers) {
        if (r == root) arrival[tx.message] = std::min(arrival[tx.message], t + 1);
      }
    }
  }
  for (model::Message m = 1; m < 16; ++m) {
    EXPECT_EQ(arrival[m], m) << "message " << m;
  }
}

TEST(PropagateUp, EveryVertexReceivesItsSubtreeSequentially) {
  // (U1)/(U2) at every vertex: l-message at time 1, r-messages at times
  // i-k+2 .. j-k.
  Rng rng(4242);
  const auto g = graph::random_tree(50, rng);
  const auto instance = Instance(tree::root_tree_graph(g, 0));
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const auto up = propagate_up(instance);

  for (std::size_t t = 0; t < up.round_count(); ++t) {
    for (const auto& tx : up.round(t)) {
      for (graph::Vertex r : tx.receivers) {
        // Who receives message m at time t+1 in the up schedule?
        const auto i = labels.label(r);
        const auto j = labels.subtree_end(r);
        const auto k = tree.level(r);
        ASSERT_TRUE(tx.message >= i && tx.message <= j)
            << "up schedule delivers a non-subtree message";
        if (tx.message == i + 1 && t + 1 == 1) continue;  // (U1)
        EXPECT_EQ(t + 1, tx.message - k) << "(U2) timing";
      }
    }
  }
}

TEST(PropagateUp, LipMessagesLeaveAtTimeZero) {
  const auto instance = fig4_instance();
  const auto up = propagate_up(instance);
  // First children in Fig. 5: 1 (of 0), 2 (of 1), 5 (of 4), 6 (of 5),
  // 9 (of 8), 12 (of 11), 13 (of 12).
  std::vector<graph::Vertex> senders;
  for (const auto& tx : up.round(0)) senders.push_back(tx.sender);
  std::sort(senders.begin(), senders.end());
  EXPECT_EQ(senders,
            (std::vector<graph::Vertex>{1, 2, 5, 6, 9, 12, 13}));
}

TEST(PropagateUp, NoReceiveConflictsInIsolation) {
  // Lemma 2 feasibility: the up schedule alone obeys the model rules.
  const auto instance = fig4_instance();
  const auto up = propagate_up(instance);
  model::ValidatorOptions options;
  options.require_completion = false;
  const auto report = model::validate_schedule(
      instance.tree().as_graph(), up, instance.initial(), options);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(PropagateDown, NoConflictsGivenUpDelivery) {
  // Lemma 3 is conditional on Propagate-Up supplying the b-messages; the
  // merged schedule (Theorem 1) is validated elsewhere.  Here: the down
  // schedule alone must have no send/receive conflicts (rules 1-2), which
  // we check by counting senders and receivers per round.
  const auto instance = fig4_instance();
  const auto down = propagate_down(instance);
  for (std::size_t t = 0; t < down.round_count(); ++t) {
    std::vector<graph::Vertex> senders;
    std::vector<graph::Vertex> receivers;
    for (const auto& tx : down.round(t)) {
      senders.push_back(tx.sender);
      receivers.insert(receivers.end(), tx.receivers.begin(),
                       tx.receivers.end());
    }
    std::sort(senders.begin(), senders.end());
    EXPECT_EQ(std::adjacent_find(senders.begin(), senders.end()),
              senders.end())
        << "duplicate sender at t=" << t;
    std::sort(receivers.begin(), receivers.end());
    EXPECT_EQ(std::adjacent_find(receivers.begin(), receivers.end()),
              receivers.end())
        << "duplicate receiver at t=" << t;
  }
}

TEST(ConcurrentUpDown, UpAndDownOverlapOnlyOnEqualMessages) {
  // Theorem 1's merge argument: whenever a vertex appears as sender in
  // both components at one time, the message is the same.  The merged
  // schedule having one transmission per (t, sender) implies it; validated
  // implicitly by concurrent_updown's internal assertion, re-checked here.
  const auto instance = fig4_instance();
  const auto merged = concurrent_updown(instance);
  for (std::size_t t = 0; t < merged.round_count(); ++t) {
    std::vector<graph::Vertex> senders;
    for (const auto& tx : merged.round(t)) senders.push_back(tx.sender);
    std::sort(senders.begin(), senders.end());
    EXPECT_EQ(std::adjacent_find(senders.begin(), senders.end()),
              senders.end());
  }
}

TEST(ConcurrentUpDown, AblationWithoutLookaheadCreatesConflict) {
  // §3.2's prose: without the time-0 lip send, "there would be a conflict
  // (two different messages sent at the same time to processor 1)".  The
  // validator must reject the merged schedule.
  ConcurrentUpDownOptions options;
  options.lookahead_at_time_zero = false;
  const auto instance = fig4_instance();
  const auto schedule = concurrent_updown(instance, options);
  model::ValidatorOptions vopts;
  const auto report = model::validate_schedule(
      instance.tree().as_graph(), schedule, instance.initial(), vopts);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("receives two messages"), std::string::npos)
      << report.error;
}

TEST(ConcurrentUpDown, OddLineMatchesSectionFourDiscussion) {
  // §4: on the odd line the schedule takes n + r, one above the n + r - 1
  // lower bound.
  for (graph::Vertex m : {1u, 2u, 5u, 10u}) {
    const graph::Vertex n = 2 * m + 1;
    const auto instance = Instance::from_network(graph::path(n));
    EXPECT_EQ(instance.radius(), m);
    const auto schedule = concurrent_updown(instance);
    test::expect_valid_gossip(instance, schedule);
    EXPECT_EQ(schedule.total_time(), n + m);
    EXPECT_EQ(schedule.total_time(), odd_line_lower_bound(n) + 1);
  }
}

TEST(ConcurrentUpDown, ApproxRatioWithinGuarantee) {
  // §4: r <= n/2 and OPT >= n - 1 give a ratio of (n + n/2)/(n - 1),
  // i.e. "at most 1.5 times optimal" asymptotically.
  for (const auto& family : test::families()) {
    const auto g = family.make(9);
    const auto n = g.vertex_count();
    const auto instance = Instance::from_network(g);
    const auto schedule = concurrent_updown(instance);
    const double ratio = static_cast<double>(schedule.total_time()) /
                         static_cast<double>(trivial_lower_bound(n));
    EXPECT_LE(ratio, approx_ratio_bound(n, n / 2) + 1e-9) << family.name;
  }
  // And the asymptotic 1.5 on a large worst-case instance.
  const auto instance = Instance::from_network(graph::cycle(400));
  const double ratio =
      static_cast<double>(concurrent_updown(instance).total_time()) / 399.0;
  EXPECT_LE(ratio, 1.51);
}

TEST(ConcurrentUpDown, RandomTreesBySeedSweep) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto n = static_cast<graph::Vertex>(2 + rng.below(60));
    const auto g = graph::random_tree(n, rng);
    const auto instance = Instance::from_network(g);
    const auto schedule = concurrent_updown(instance);
    const auto report = test::expect_valid_gossip(instance, schedule);
    ASSERT_TRUE(report.ok) << "seed=" << seed << " n=" << n;
    EXPECT_EQ(schedule.total_time(), n + instance.radius())
        << "seed=" << seed;
  }
}

TEST(ConcurrentUpDown, TrivialSizes) {
  EXPECT_EQ(concurrent_updown(Instance(tree::RootedTree::from_parents(
                                  0, {graph::kNoVertex})))
                .total_time(),
            0u);
  const auto two =
      Instance(tree::RootedTree::from_parents(0, {graph::kNoVertex, 0}));
  const auto schedule = concurrent_updown(two);
  test::expect_valid_gossip(two, schedule);
  EXPECT_EQ(schedule.total_time(), 3u);  // n + r = 2 + 1
}

TEST(ConcurrentUpDown, CompletionTimesRespectLevels) {
  // Every vertex at level k receives message 0 (the last o-message) at
  // time n + k, so completion time is between n and n + level.
  const auto instance = fig4_instance();
  const auto schedule = concurrent_updown(instance);
  const auto report = test::expect_valid_gossip(instance, schedule);
  ASSERT_TRUE(report.ok);
  for (graph::Vertex v = 0; v < 16; ++v) {
    if (instance.tree().is_root(v)) {
      EXPECT_EQ(report.completion_time[v], 15u);  // all b-messages by n-1
    } else {
      EXPECT_EQ(report.completion_time[v], 16u + instance.tree().level(v));
    }
  }
}

TEST(ConcurrentUpDown, StrictlyFasterThanSimpleBeyondTinyTrees) {
  for (const auto& family : test::families()) {
    const auto g = family.make(8);
    if (g.vertex_count() < 6) continue;
    const auto instance = Instance::from_network(g);
    const std::size_t simple_time =
        2 * static_cast<std::size_t>(instance.vertex_count()) +
        instance.radius() - 3;
    EXPECT_LT(concurrent_updown(instance).total_time(), simple_time)
        << family.name;
  }
}

}  // namespace
}  // namespace mg::gossip
