// Fixed-capacity dynamic bitset used for per-processor hold sets h_i.  A
// processor's knowledge is a subset of the n messages; the simulator and
// validator need set/test/count/all at word speed for O(n^2) total
// schedule-checking work.
#pragma once

#include <cstdint>
#include <vector>

#include "support/contracts.h"

namespace mg {

/// Bit vector of a size fixed at construction.
class DynamicBitset {
 public:
  explicit DynamicBitset(std::size_t bits = 0)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return bits_; }

  void set(std::size_t i) {
    MG_EXPECTS(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    MG_EXPECTS(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    MG_EXPECTS(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (std::uint64_t w : words_) {
      total += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return total;
  }

  /// True when every bit is set.
  [[nodiscard]] bool all() const { return count() == bits_; }

  /// True when no bit is set.
  [[nodiscard]] bool none() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Word-parallel union: one OR per 64 bits.  Sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    MG_EXPECTS(bits_ == other.bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
    return *this;
  }

  [[nodiscard]] bool operator==(const DynamicBitset&) const = default;

  /// Raw 64-bit words, little-endian bit order — the wire format the dist
  /// recovery digests use.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  /// Reconstructs a bitset from raw words (the inverse of `words()`).  Bits
  /// past `bits` in the last word must be zero.
  static DynamicBitset from_words(std::size_t bits,
                                  std::vector<std::uint64_t> words) {
    DynamicBitset b;
    MG_EXPECTS(words.size() == (bits + 63) / 64);
    if (bits % 64 != 0 && !words.empty()) {
      MG_EXPECTS((words.back() >> (bits % 64)) == 0);
    }
    b.bits_ = bits;
    b.words_ = std::move(words);
    return b;
  }

 private:
  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

}  // namespace mg
