// Tests pinning down the paper's example networks: N1 (Fig. 1), the
// Petersen graph (Fig. 2), the N3-class witness (Fig. 3), and the Fig. 4 /
// Fig. 5 running example reconstructed from Tables 1-4.
#include <gtest/gtest.h>

#include "graph/named.h"
#include "graph/properties.h"
#include "tree/labeling.h"
#include "tree/spanning_tree.h"

namespace mg::graph {
namespace {

TEST(Named, N1IsACycle) {
  const Graph g = n1_cycle(8);
  EXPECT_EQ(g.vertex_count(), 8u);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Named, PetersenIsThreeRegularRadiusTwo) {
  const Graph g = petersen();
  EXPECT_EQ(g.vertex_count(), 10u);
  EXPECT_EQ(g.edge_count(), 15u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, 2u);
  EXPECT_EQ(m.diameter, 2u);
}

TEST(Named, PetersenHasGirthFive) {
  // No triangles and no 4-cycles: any two adjacent vertices share no
  // common neighbor, any two non-adjacent share exactly one.
  const Graph g = petersen();
  for (Vertex u = 0; u < 10; ++u) {
    for (Vertex v = u + 1; v < 10; ++v) {
      int common = 0;
      for (Vertex w : g.neighbors(u)) {
        if (g.has_edge(v, w)) ++common;
      }
      EXPECT_EQ(common, g.has_edge(u, v) ? 0 : 1) << u << "," << v;
    }
  }
}

TEST(Named, N3WitnessIsK23) {
  const Graph g = n3_witness();
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Named, Fig5TreeIsATreeOnSixteen) {
  const Graph t = fig5_tree();
  EXPECT_EQ(t.vertex_count(), 16u);
  EXPECT_TRUE(is_tree(t));
}

TEST(Named, Fig4HasRadiusThreeCenteredAtZero) {
  const auto m = compute_metrics(fig4_network());
  EXPECT_EQ(m.radius, 3u);
  EXPECT_EQ(m.center, 0u);
}

TEST(Named, Fig4MinDepthTreeIsFig5) {
  // §3.1 applied to Fig. 4 must reproduce Fig. 5 exactly.
  const auto tree = tree::min_depth_spanning_tree(fig4_network());
  EXPECT_EQ(tree.root(), 0u);
  EXPECT_EQ(tree.height(), 3u);
  EXPECT_EQ(tree.as_graph(), fig5_tree());
}

TEST(Named, Fig5DfsLabelsAreVertexIds) {
  // The reconstruction numbers processors so DFS labels coincide with ids.
  const auto tree = tree::min_depth_spanning_tree(fig4_network());
  const tree::DfsLabeling labels(tree);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(labels.label(v), v);
}

TEST(Named, Fig5SubtreeIntervalsMatchPaper) {
  // From the prose and Tables 2-4: subtree(1) = [1,3], subtree(4) = [4,10],
  // subtree(8) = [8,10]; the third root subtree is [11,15].
  const auto tree = tree::min_depth_spanning_tree(fig4_network());
  const tree::DfsLabeling labels(tree);
  EXPECT_EQ(labels.subtree_end(1), 3u);
  EXPECT_EQ(labels.subtree_end(4), 10u);
  EXPECT_EQ(labels.subtree_end(8), 10u);
  EXPECT_EQ(labels.subtree_end(11), 15u);
  EXPECT_EQ(tree.level(1), 1u);
  EXPECT_EQ(tree.level(4), 1u);
  EXPECT_EQ(tree.level(8), 2u);
}

TEST(Named, Fig4CrossEdgesAreWithinBfsLevels) {
  const Graph g = fig4_network();
  const auto dist = bfs_distances(g, 0);
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LE(dist[u] > dist[v] ? dist[u] - dist[v] : dist[v] - dist[u], 1u);
  }
}

}  // namespace
}  // namespace mg::graph
