file(REMOVE_RECURSE
  "CMakeFiles/weighted_gossip_bench.dir/weighted_gossip_bench.cpp.o"
  "CMakeFiles/weighted_gossip_bench.dir/weighted_gossip_bench.cpp.o.d"
  "weighted_gossip_bench"
  "weighted_gossip_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_gossip_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
