file(REMOVE_RECURSE
  "CMakeFiles/broadcast_bench.dir/broadcast_bench.cpp.o"
  "CMakeFiles/broadcast_bench.dir/broadcast_bench.cpp.o.d"
  "broadcast_bench"
  "broadcast_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
