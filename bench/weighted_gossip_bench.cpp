// Experiment B7 (§4 weighted gossiping): chain splitting turns a network
// whose processor v holds l_v messages into a virtual tree of N = sum l_v
// nodes; ConcurrentUpDown then finishes in N + r_virtual rounds.  The bench
// sweeps weight distributions and reports the projection load a real
// processor bears when mimicking its chain (external sends/receives per
// round).
#include <cstdio>
#include <numeric>

#include "gossip/weighted.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(0x11);

  struct Case {
    std::string name;
    graph::Graph g;
    std::vector<std::uint32_t> weights;
  };
  std::vector<Case> cases;
  {
    const auto g = graph::fig4_network();
    cases.push_back({"fig4, unit weights", g,
                     std::vector<std::uint32_t>(16, 1)});
    std::vector<std::uint32_t> heavy(16, 1);
    heavy[0] = 4;
    heavy[4] = 3;
    cases.push_back({"fig4, heavy root+hub", g, heavy});
  }
  {
    const auto g = graph::grid(4, 4);
    std::vector<std::uint32_t> random_w(16);
    for (auto& w : random_w) {
      w = 1 + static_cast<std::uint32_t>(rng.below(4));
    }
    cases.push_back({"grid 4x4, weights U[1,4]", g, random_w});
  }
  {
    const auto g = graph::star(9);
    std::vector<std::uint32_t> hub(9, 1);
    hub[0] = 8;
    cases.push_back({"star 9, hub weight 8", g, hub});
    cases.push_back({"star 9, leaves weight 3",
                     g, std::vector<std::uint32_t>{1, 3, 3, 3, 3, 3, 3, 3, 3}});
  }
  {
    const auto g = graph::cycle(12);
    std::vector<std::uint32_t> alternating(12, 1);
    for (std::size_t v = 0; v < 12; v += 2) alternating[v] = 2;
    cases.push_back({"cycle 12, alternating 2/1", g, alternating});
  }

  TextTable table;
  table.new_row();
  for (const char* h :
       {"case", "n", "N=sum l_v", "r_virtual", "rounds", "N+r", "match",
        "max ext sends", "max ext recvs"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& c : cases) {
    const auto result = gossip::weighted_gossip(c.g, c.weights);
    const auto report = model::validate_schedule(
        result.virtual_instance.tree().as_graph(), result.schedule,
        result.virtual_instance.initial());
    const bool match =
        report.ok &&
        result.schedule.total_time() ==
            result.total_messages + result.virtual_radius;
    all_ok = all_ok && match;

    table.new_row();
    table.cell(c.name);
    table.cell(static_cast<std::size_t>(c.g.vertex_count()));
    table.cell(result.total_messages);
    table.cell(static_cast<std::size_t>(result.virtual_radius));
    table.cell(result.schedule.total_time());
    table.cell(result.total_messages + result.virtual_radius);
    table.cell(std::string(match ? "yes" : "NO"));
    table.cell(result.max_external_sends);
    table.cell(result.max_external_receives);
  }

  std::printf(
      "B7 / §4: weighted gossiping by chain splitting\n"
      "(time == N + r_virtual; external load = real-edge traffic a "
      "processor\nhandles per round while mimicking its chain)\n\n%s\nall "
      "valid: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
