// One-call front-end: build the minimum-depth spanning tree of an
// arbitrary connected network (§3.1), run the selected tree-gossip
// algorithm (§3.2), and validate the result against the communication
// model.  This is the function a downstream user calls first; the
// quickstart example is built on it.
#pragma once

#include <string>

#include "gossip/instance.h"
#include "model/schedule.h"
#include "model/validator.h"

namespace mg {
class ThreadPool;
}

namespace mg::gossip {

enum class Algorithm : std::uint8_t {
  kSimple,             ///< Lemma 1: 2n + r - 3
  kUpDown,             ///< two-phase concurrent greedy (Gonzalez 2000)
  kConcurrentUpDown,   ///< Theorem 1: n + r (the paper's main algorithm)
  kTelephone,          ///< unicast-only baseline on the same tree
};

[[nodiscard]] std::string algorithm_name(Algorithm algorithm);

struct Solution {
  Instance instance;            ///< tree + DFS labeling used
  Algorithm algorithm;
  model::Schedule schedule;     ///< message ids are DFS labels
  model::ValidationReport report;  ///< always validated; report.ok on success
};

/// Solves gossiping on connected network `g`.  The returned schedule's
/// message ids are DFS labels; `solution.instance.initial()` maps them.
[[nodiscard]] Solution solve_gossip(
    const graph::Graph& g, Algorithm algorithm = Algorithm::kConcurrentUpDown,
    ThreadPool* pool = nullptr);

/// Runs the algorithm on an already-built instance and validates.
[[nodiscard]] model::Schedule run_algorithm(const Instance& instance,
                                            Algorithm algorithm);

}  // namespace mg::gossip
