#include "graph/enumeration.h"

#include "support/contracts.h"

namespace mg::graph {

std::size_t labeled_tree_count(Vertex n) {
  if (n <= 2) return 1;
  std::size_t count = 1;
  for (Vertex e = 0; e < n - 2; ++e) count *= n;
  return count;
}

Graph tree_from_pruefer(Vertex n, std::span<const Vertex> pruefer) {
  MG_EXPECTS(n >= 1);
  if (n == 1) return Graph(1);
  MG_EXPECTS(pruefer.size() == static_cast<std::size_t>(n) - 2);
  std::vector<Vertex> degree(n, 1);
  for (Vertex p : pruefer) {
    MG_EXPECTS(p < n);
    ++degree[p];
  }
  GraphBuilder builder(n);
  Vertex ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  Vertex leaf = ptr;
  for (Vertex p : pruefer) {
    builder.add_edge(leaf, p);
    if (--degree[p] == 1 && p < ptr) {
      leaf = p;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  builder.add_edge(leaf, n - 1);
  return builder.build();
}

std::size_t for_each_labeled_tree(
    Vertex n, const std::function<bool(const Graph&)>& visit) {
  MG_EXPECTS(n >= 1);
  if (n <= 2) {
    visit(n == 1 ? Graph(1) : tree_from_pruefer(2, {}));
    return 1;
  }
  std::vector<Vertex> pruefer(n - 2, 0);
  std::size_t visited = 0;
  for (;;) {
    ++visited;
    if (!visit(tree_from_pruefer(n, pruefer))) return visited;
    // Odometer increment over base-n digits.
    std::size_t digit = 0;
    while (digit < pruefer.size() && ++pruefer[digit] == n) {
      pruefer[digit] = 0;
      ++digit;
    }
    if (digit == pruefer.size()) return visited;
  }
}

}  // namespace mg::graph
