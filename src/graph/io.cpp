#include "graph/io.h"

#include <sstream>
#include <stdexcept>

namespace mg::graph {

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  out << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
  return out.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream in(text);
  long long n = 0;
  long long m = 0;
  if (!(in >> n >> m) || n < 0 || m < 0) {
    throw std::invalid_argument("edge list: malformed header");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (long long e = 0; e < m; ++e) {
    long long u = 0;
    long long v = 0;
    if (!(in >> u >> v)) {
      throw std::invalid_argument("edge list: truncated edge section");
    }
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw std::invalid_argument("edge list: endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("edge list: self-loop");
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

std::string to_dot(const Graph& g, const std::vector<std::string>& labels) {
  std::ostringstream out;
  out << "graph G {\n";
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    out << "  " << v;
    if (v < labels.size()) out << " [label=\"" << labels[v] << "\"]";
    out << ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace mg::graph
