// Tests for §2's optimal multicast broadcast.
#include <gtest/gtest.h>

#include "gossip/broadcast.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "model/validator.h"
#include "support/rng.h"

namespace mg::gossip {
namespace {

TEST(Broadcast, TimeEqualsEccentricity) {
  Rng rng(2);
  const std::vector<graph::Graph> graphs = {
      graph::path(9),  graph::cycle(8),        graph::grid(4, 5),
      graph::star(10), graph::petersen(),      graph::hypercube(4),
      graph::random_connected_gnp(30, 0.15, rng),
  };
  for (const auto& g : graphs) {
    for (graph::Vertex source : {graph::Vertex{0},
                                 static_cast<graph::Vertex>(
                                     g.vertex_count() / 2)}) {
      const auto schedule = multicast_broadcast(g, source);
      const auto report = model::validate_broadcast(g, schedule, source);
      ASSERT_TRUE(report.ok) << report.error;
      EXPECT_EQ(schedule.total_time(), *graph::eccentricity(g, source));
    }
  }
}

TEST(Broadcast, EachVertexReceivesAtItsBfsDistance) {
  const auto g = graph::grid(5, 6);
  const graph::Vertex source = 7;
  const auto schedule = multicast_broadcast(g, source);
  const auto dist = graph::bfs_distances(g, source);
  std::vector<std::size_t> arrival(g.vertex_count(), 0);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      for (graph::Vertex r : tx.receivers) arrival[r] = t + 1;
    }
  }
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    if (v == source) continue;
    EXPECT_EQ(arrival[v], dist[v]) << "vertex " << v;
  }
}

TEST(Broadcast, EveryVertexReceivesExactlyOnce) {
  const auto g = graph::petersen();
  const auto schedule = multicast_broadcast(g, 0);
  std::vector<int> receipts(10, 0);
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      for (graph::Vertex r : tx.receivers) ++receipts[r];
    }
  }
  EXPECT_EQ(receipts[0], 0);
  for (graph::Vertex v = 1; v < 10; ++v) EXPECT_EQ(receipts[v], 1);
}

TEST(Broadcast, CompleteGraphIsOneRound) {
  const auto schedule = multicast_broadcast(graph::complete(9), 4);
  EXPECT_EQ(schedule.total_time(), 1u);
  EXPECT_EQ(schedule.transmission_count(), 1u);
  EXPECT_EQ(schedule.max_fanout(), 8u);
}

TEST(Broadcast, SingleVertexIsEmpty) {
  EXPECT_EQ(multicast_broadcast(graph::Graph(1), 0).total_time(), 0u);
}

}  // namespace
}  // namespace mg::gossip
