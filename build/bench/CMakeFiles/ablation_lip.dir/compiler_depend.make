# Empty compiler generated dependencies file for ablation_lip.
# This may be replaced when dependencies are built.
