// Rooted spanning trees and the paper's §3.1 construction: the
// minimum-depth spanning tree obtained by BFS from a center vertex, whose
// height equals the network radius.  All gossip communication is then
// performed on this tree network.  The center comes from
// `graph::find_center` — exhaustive on small graphs (byte-identical to the
// historical n-BFS sweep), hybrid double-sweep + pruned scan at scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/center.h"
#include "graph/graph.h"

namespace mg {
class ThreadPool;
}

namespace mg::tree {

using graph::Graph;
using graph::Vertex;

/// A rooted tree over vertices 0..n-1 with an explicit, stable child order
/// (the order fixes the DFS labeling of §3.2: "for every vertex, fix the
/// ordering of the subtrees in any arbitrary order").  Children are stored
/// as one flat CSR array (offsets + child list) rather than n vectors —
/// ~24 bytes per vertex all-in, which is what keeps 10^7-vertex trees
/// resident.
class RootedTree {
 public:
  /// Builds from a parent array (`parent[root] == graph::kNoVertex`).
  /// Children are ordered by ascending vertex id — the library's canonical
  /// subtree order.  Validates that the array encodes one tree.
  static RootedTree from_parents(Vertex root,
                                 std::vector<Vertex> parent);

  [[nodiscard]] Vertex vertex_count() const {
    return static_cast<Vertex>(parent_.size());
  }
  [[nodiscard]] Vertex root() const { return root_; }
  [[nodiscard]] Vertex parent(Vertex v) const { return parent_[v]; }
  [[nodiscard]] std::span<const Vertex> children(Vertex v) const {
    return {child_list_.data() + child_offsets_[v],
            child_offsets_[v + 1] - child_offsets_[v]};
  }
  [[nodiscard]] bool is_root(Vertex v) const { return v == root_; }
  [[nodiscard]] bool is_leaf(Vertex v) const {
    return child_offsets_[v] == child_offsets_[v + 1];
  }

  /// Level (depth) of `v`: root = 0, its children = 1, ... (paper §3.2).
  [[nodiscard]] std::uint32_t level(Vertex v) const { return level_[v]; }

  /// Height of the tree = max level; equals the radius when this tree was
  /// produced by `min_depth_spanning_tree`.
  [[nodiscard]] std::uint32_t height() const { return height_; }

  /// Vertices in preorder (root first, children in stored order).
  [[nodiscard]] std::vector<Vertex> preorder() const;

  /// The tree as a free graph (n-1 edges).
  [[nodiscard]] Graph as_graph() const;

 private:
  Vertex root_ = 0;
  std::vector<Vertex> parent_;
  std::vector<std::uint32_t> child_offsets_;  // size n+1
  std::vector<Vertex> child_list_;            // size n-1, by parent, ascending
  std::vector<std::uint32_t> level_;
  std::uint32_t height_ = 0;
};

/// BFS spanning tree of a connected graph rooted at `root`; each vertex's
/// parent is its smallest-id neighbor in the previous BFS level, making the
/// construction deterministic.
[[nodiscard]] RootedTree bfs_tree(const Graph& g, Vertex root);

/// §3.1: a spanning tree of least possible height over a connected graph —
/// BFS from a center vertex located by `graph::find_center` (exhaustive
/// below the auto threshold: the smallest-id vertex of minimum
/// eccentricity; hybrid pruned scan above it).  When `pool` is non-null
/// the BFS sweeps run in parallel; the tree is identical for any thread
/// count.  The result's height() equals the graph radius.
[[nodiscard]] RootedTree min_depth_spanning_tree(const Graph& g,
                                                 ThreadPool* pool = nullptr);

/// Same, with explicit control over the center search (mode, thresholds).
[[nodiscard]] RootedTree min_depth_spanning_tree(
    const Graph& g, ThreadPool* pool, const graph::CenterOptions& center);

/// Interprets a tree-shaped free graph as a RootedTree rooted at `root`.
/// Precondition: `g` is a tree.
[[nodiscard]] RootedTree root_tree_graph(const Graph& g, Vertex root);

}  // namespace mg::tree
