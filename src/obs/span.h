// Span tracing: causally-nested wall-clock intervals for offline timeline
// inspection (Dapper-style, exported as Chrome trace-event JSON — see
// trace_export.h).
//
// A span is one `[start, end)` interval on one thread, produced by the
// RAII guard `ScopeSpan` (macro `MG_OBS_SPAN`).  Nesting is implicit:
// spans on the same thread are properly bracketed (a child span is fully
// contained in its parent's interval), and each span also records its
// lexical depth so tests and exporters can verify the bracketing without
// reconstructing it from timestamps.
//
// Spans land in a *bounded lock-free ring buffer*: recording is one
// relaxed fetch_add to claim a slot, a plain write, and one release store
// to publish it.  When the buffer is full further spans are counted as
// dropped rather than blocking or reallocating — tracing must never
// disturb the workload it observes.  The same two off switches as the
// metric registry apply: compile-time (`MG_OBS_ENABLED=0` turns
// MG_OBS_SPAN into nothing) and runtime (`SpanTracer::set_enabled(false)`,
// the default, reduces a ScopeSpan to a single relaxed atomic load).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace mg::obs {

class SpanTracer {
 public:
  /// Longest span name kept (longer names are truncated, not rejected).
  static constexpr std::size_t kMaxNameLength = 47;

  /// One completed span.  Timestamps are monotonic nanoseconds since the
  /// tracer's construction (steady clock), so spans from different threads
  /// order consistently.
  struct Span {
    char name[kMaxNameLength + 1] = {};
    std::uint32_t thread = 0;  ///< small per-thread id (1, 2, ...)
    std::uint32_t depth = 0;   ///< nesting depth at record time (0 = root)
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
  };

  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// The process-wide tracer MG_OBS_SPAN reports into.  Disabled by
  /// default: tracing is opt-in per run, unlike the always-on counters.
  static SpanTracer& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic now in the tracer's own timebase.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Small dense id of the calling thread (stable for its lifetime).
  [[nodiscard]] static std::uint32_t this_thread_id();

  /// Publishes one completed span; lock-free, drops when the ring is full.
  /// Safe to call concurrently with snapshot().
  void record(std::string_view name, std::uint32_t thread,
              std::uint32_t depth, std::uint64_t start_ns,
              std::uint64_t end_ns);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Spans accepted into the ring so far (<= capacity).
  [[nodiscard]] std::uint64_t recorded() const;

  /// Spans rejected because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Copies every published span, sorted by (start, end descending) so a
  /// parent precedes its children.  Spans still being written by a
  /// concurrent record() are skipped, never torn.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Forgets every span.  Not safe concurrently with record() — quiesce
  /// (or disable) the tracer first.
  void clear();

 private:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;  // 16384 spans

  struct Slot {
    std::atomic<bool> ready{false};
    Span span;
  };

  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};  ///< slots ever claimed (may exceed
                                        ///< capacity; excess = dropped)
  std::uint64_t epoch_ns_;              ///< steady-clock origin
};

/// RAII guard producing one span in a tracer (the global one by default).
/// Captures the enabled flag at construction, so a span opened before
/// set_enabled(false) still completes consistently.  The name must outlive
/// the guard (string literals always do).
class ScopeSpan {
 public:
  explicit ScopeSpan(std::string_view name)
      : ScopeSpan(SpanTracer::global(), name) {}

  ScopeSpan(SpanTracer& tracer, std::string_view name);
  ScopeSpan(const ScopeSpan&) = delete;
  ScopeSpan& operator=(const ScopeSpan&) = delete;
  ~ScopeSpan();

 private:
  SpanTracer* tracer_ = nullptr;  ///< nullptr when tracing was disabled
  std::string_view name_;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
};

}  // namespace mg::obs

// Compile-time switch; same default as registry.h (the build defines
// MG_OBS_ENABLED on the mg_obs target, PUBLIC).
#ifndef MG_OBS_ENABLED
#define MG_OBS_ENABLED 1
#endif

#if MG_OBS_ENABLED
/// Opens a span named `name` in the global tracer for the enclosing scope.
/// `var` names the guard object (must be unique in the scope).
#define MG_OBS_SPAN(var, name) ::mg::obs::ScopeSpan var(name)
#else
#define MG_OBS_SPAN(var, name) ((void)0)
#endif
