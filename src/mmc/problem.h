// The MultiMessage Multicasting problem (MMC) over fully connected
// networks — the paper's own framing of related work ([12], [13], [14]):
// "each processor needs to transmit a set of messages, but each message is
// to be received by its own subset of processors ... The gossiping problem
// is a restricted version of the multimessage multicasting problem."
//
// An instance: n processors, a list of messages, each with a source and a
// destination set.  The communication rules are the paper's (§1): per
// round a processor sends at most one (multicast) message and receives at
// most one.  The *degree* d of an instance is the larger of the maximum
// number of messages any processor must originate and the maximum number
// of receptions any processor requires; every schedule needs at least d
// rounds.  Gossiping on the complete graph is the restriction where every
// processor has exactly one message destined to everyone (d = n - 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"

namespace mg::mmc {

struct MmcMessage {
  model::Message id = 0;                  ///< dense ids 0..message_count-1
  graph::Vertex source = 0;
  std::vector<graph::Vertex> destinations;  ///< sorted, no self, non-empty
};

class MmcInstance {
 public:
  MmcInstance(graph::Vertex processors, std::vector<MmcMessage> messages);

  [[nodiscard]] graph::Vertex processor_count() const { return n_; }
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }
  [[nodiscard]] const std::vector<MmcMessage>& messages() const {
    return messages_;
  }

  /// The degree d: max over processors of max(#messages originated,
  /// #receptions required).  Lower bound on every schedule's length.
  [[nodiscard]] std::size_t degree() const { return degree_; }

  /// Initial holdings for validate_schedule_general.
  [[nodiscard]] std::vector<std::vector<model::Message>> initial_sets() const;

  /// Checks that `schedule` is rule-legal on the complete network and
  /// delivers every message to all its destinations; returns an empty
  /// string on success, the first problem otherwise.
  [[nodiscard]] std::string check(const model::Schedule& schedule) const;

  /// The gossiping restriction: processor v's message v goes to everyone
  /// (degree n - 1).
  static MmcInstance gossip_restriction(graph::Vertex n);

 private:
  graph::Vertex n_;
  std::vector<MmcMessage> messages_;
  std::size_t degree_ = 0;
};

}  // namespace mg::mmc
