// Ablation: step (U3)'s time-0 lookahead send, the paper's key trick.
// §3.2: "If we do not do this ... then some messages would get stuck at
// each level ... and the total communication time would be more than
// n + r.  More specifically, consider node 1 (with message 4) in Fig. 5.
// Suppose message 5 was not sent to processor 1 at time zero ... Then,
// there would be a conflict (two different messages sent at the same time
// to processor 1)."  This bench reproduces exactly that conflict and shows
// the validator rejecting the lip-less merged schedule on every family.
#include <cstdio>

#include "gossip/concurrent_updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(2);
  struct Case {
    std::string name;
    graph::Graph g;
    // Depth-1 trees are the degenerate exception: every child is a leaf,
    // the lip send coincides with (U4) at time 0, and dropping (U3)
    // changes nothing.  Everywhere else the paper's conflict must appear.
    bool expect_conflict;
  };
  const std::vector<Case> cases = {
      {"fig4", graph::fig4_network(), true},
      {"grid 5x5", graph::grid(5, 5), true},
      {"binary tree 31", graph::k_ary_tree(31, 2), true},
      {"star 16 (depth-1)", graph::star(16), false},
      {"random tree 40", graph::random_tree(40, rng), true},
  };

  TextTable table;
  table.new_row();
  for (const char* h : {"network", "with lip (U3)", "without lip",
                        "expected", "as predicted"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  std::string sample_error;
  for (const auto& [name, g, expect_conflict] : cases) {
    const auto instance = gossip::Instance::from_network(g);
    const auto with_lip = gossip::concurrent_updown(instance);
    const auto with_report = model::validate_schedule(
        instance.tree().as_graph(), with_lip, instance.initial());

    gossip::ConcurrentUpDownOptions no_lip;
    no_lip.lookahead_at_time_zero = false;
    const auto without = gossip::concurrent_updown(instance, no_lip);
    const auto without_report = model::validate_schedule(
        instance.tree().as_graph(), without, instance.initial());

    const bool as_predicted =
        with_report.ok && (without_report.ok != expect_conflict);
    all_ok = all_ok && as_predicted;
    if (sample_error.empty() && !without_report.ok && name == "fig4") {
      sample_error = without_report.error;
    }

    table.new_row();
    table.cell(name);
    table.cell(std::string(with_report.ok ? "valid, n+r" : "INVALID"));
    table.cell(std::string(without_report.ok ? "valid" : "conflict"));
    table.cell(std::string(expect_conflict ? "conflict" : "valid"));
    table.cell(std::string(as_predicted ? "yes" : "NO"));
  }

  std::printf(
      "Ablation: (U3) lookahead-at-time-0\n\n%s\n"
      "Fig. 5 conflict reproduced by the validator:\n  %s\n"
      "ablation behaves as §3.2 predicts on every family: %s\n",
      table.render().c_str(), sample_error.c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
