// Gossip completion from an arbitrary knowledge state ("set gossiping").
//
// The paper's schedules are fixed offline plans; the simulator shows that a
// dropped transmission leaves part of the network permanently starved.
// This module provides the natural repair: given the per-processor hold
// sets after a faulty run, build a fresh schedule that finishes the gossip
// on the *original network* (not just the tree — recovery may route around
// a lossy branch).  The builder is a greedy maximal-multicast flood: each
// round, every processor picks the held message wanted by the most
// still-free needy neighbors, conflicts resolved greedily; it terminates
// because some wanting receiver with a knowing neighbor always exists on a
// connected network.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"
#include "support/bitset.h"

namespace mg::gossip {

/// Greedy completion schedule: from hold-state `holds` (holds[v].size() ==
/// message_count for every v; bit m set when v knows message m), produce a
/// schedule after which every processor holds every message.  Requires a
/// connected graph and every message known somewhere.
[[nodiscard]] model::Schedule greedy_completion_schedule(
    const graph::Graph& g, const std::vector<DynamicBitset>& holds);

/// Convenience: hold-state -> initial sets for validate_schedule_general.
[[nodiscard]] std::vector<std::vector<model::Message>> holds_to_initial_sets(
    const std::vector<DynamicBitset>& holds);

}  // namespace mg::gossip
