// Parameterized property sweeps: every algorithm x every family x a size
// range.  The invariants checked are the paper's headline claims:
//   * feasibility under the communication model (independent validator);
//   * completion (every processor ends with all n messages);
//   * the exact closed forms: n + r for ConcurrentUpDown, 2n + r - 3 for
//     Simple; UpDown and Telephone bracketed by them;
//   * the 1.5-approximation guarantee.
#include <gtest/gtest.h>

#include <tuple>

#include "gossip/bounds.h"
#include "gossip/simple.h"
#include "gossip/solve.h"
#include "test_util.h"

namespace mg::gossip {
namespace {

struct SweepParam {
  std::string family;
  graph::Vertex knob;
  Algorithm algorithm;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return info.param.family + "_" + std::to_string(info.param.knob) + "_" +
         algorithm_name(info.param.algorithm);
}

class GossipSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GossipSweep, FeasibleCompleteAndWithinBounds) {
  const auto& param = GetParam();
  const test::Family* family = nullptr;
  for (const auto& f : test::families()) {
    if (f.name == param.family) family = &f;
  }
  ASSERT_NE(family, nullptr);
  const auto g = family->make(param.knob);
  const auto n = g.vertex_count();

  const auto sol = solve_gossip(g, param.algorithm);
  ASSERT_TRUE(sol.report.ok) << sol.report.error;

  const std::size_t r = sol.instance.radius();
  const std::size_t time = sol.schedule.total_time();
  EXPECT_GE(time, trivial_lower_bound(n));

  switch (param.algorithm) {
    case Algorithm::kConcurrentUpDown:
      EXPECT_EQ(time, concurrent_updown_time(n, r));
      EXPECT_LE(static_cast<double>(time),
                1.5 * static_cast<double>(trivial_lower_bound(n)) + 2.0);
      break;
    case Algorithm::kSimple:
      EXPECT_EQ(time, simple_total_time(n, r));
      break;
    case Algorithm::kUpDown:
      EXPECT_GE(time, concurrent_updown_time(n, r) > 0
                          ? concurrent_updown_time(n, r) - 1
                          : 0);
      EXPECT_LE(time, simple_total_time(n, r));
      break;
    case Algorithm::kTelephone:
      EXPECT_TRUE(sol.schedule.is_telephone());
      EXPECT_GE(time, concurrent_updown_time(n, r) > 0
                          ? concurrent_updown_time(n, r) - 1
                          : 0);
      break;
  }

  // Per-node completion never precedes the trivial bound and never exceeds
  // the schedule's total time.
  for (const auto completion : sol.report.completion_time) {
    if (n >= 2) {
      EXPECT_GE(completion, trivial_lower_bound(n));
      EXPECT_LE(completion, time);
    }
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 4u, 5u, 8u, 13u}) {
      for (Algorithm alg :
           {Algorithm::kSimple, Algorithm::kUpDown,
            Algorithm::kConcurrentUpDown, Algorithm::kTelephone}) {
        params.push_back({family.name, knob, alg});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GossipSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

}  // namespace
}  // namespace mg::gossip
