// §4 weighted gossiping: "each processor has at least one message to
// transmit.  The idea is to replace a processor that needs to send l
// messages with a chain with l processors.  In practice, one only mimics
// this splitting process."
//
// We realize the reduction explicitly: every real processor v with weight
// l_v becomes a chain of l_v virtual processors (top node keeps v's parent
// edge; v's children attach below the bottom node), ConcurrentUpDown runs
// on the virtual tree of N = sum l_v nodes, and the schedule's total time
// is N + r_virtual.  The "mimicking" is quantified by the projection
// statistics: how many *external* (real-edge) sends/receives each real
// processor performs per round when it simulates its chain — chain-internal
// transmissions are free.
#pragma once

#include <cstdint>
#include <vector>

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg {
class ThreadPool;
}

namespace mg::gossip {

struct WeightedResult {
  /// ConcurrentUpDown instance over the chain-expanded virtual tree.
  Instance virtual_instance;
  /// Virtual vertex -> the real processor simulating it.
  std::vector<graph::Vertex> real_of;
  /// The gossip schedule on the virtual tree (message ids are virtual DFS
  /// labels; message m originates at real_of[vertex_of(m)]).
  model::Schedule schedule;
  /// N = sum of weights (total messages).
  std::size_t total_messages = 0;
  /// Height of the virtual tree; total time == total_messages + this.
  std::uint32_t virtual_radius = 0;
  /// Projection load: worst per-round number of external sends (resp.
  /// receives) any real processor performs while simulating its chain.
  std::size_t max_external_sends = 0;
  std::size_t max_external_receives = 0;
};

/// Runs weighted gossiping on a connected network; `weights[v] >= 1` is the
/// number of messages processor v must disseminate.
[[nodiscard]] WeightedResult weighted_gossip(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights,
    ThreadPool* pool = nullptr);

}  // namespace mg::gossip
