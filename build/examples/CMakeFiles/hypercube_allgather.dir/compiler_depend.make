# Empty compiler generated dependencies file for hypercube_allgather.
# This may be replaced when dependencies are built.
