#include "obs/json.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/contracts.h"

namespace mg::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

void JsonWriter::before_value(bool is_key) {
  if (expect_value_) {
    MG_EXPECTS_MSG(!is_key, "JSON key given where a value was expected");
    expect_value_ = false;
    return;  // value follows its key on the same line
  }
  if (scopes_.empty()) {
    MG_EXPECTS_MSG(!root_written_, "JSON document already complete");
    root_written_ = true;
    return;
  }
  MG_EXPECTS_MSG(is_key == (scopes_.back() == Scope::kObject),
                 "JSON objects need keyed members; arrays bare values");
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value(false);
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MG_EXPECTS_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject &&
                     !expect_value_,
                 "unbalanced end_object");
  const bool empty = first_in_scope_.back();
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value(false);
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MG_EXPECTS_MSG(!scopes_.empty() && scopes_.back() == Scope::kArray,
                 "unbalanced end_array");
  const bool empty = first_in_scope_.back();
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  before_value(true);
  out_ << '"' << json_escape(name) << "\": ";
  expect_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value(false);
  out_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value(false);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value(false);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  // JSON has no NaN/Inf tokens; emit null rather than an invalid document
  // (a 0/0 ratio in a bench row must not corrupt the whole artifact).
  if (!std::isfinite(v)) return null();
  before_value(false);
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  out_ << buf.data();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value(false);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value(false);
  out_ << "null";
  return *this;
}

bool JsonWriter::done() const {
  return root_written_ && scopes_.empty() && !expect_value_;
}

}  // namespace mg::obs
