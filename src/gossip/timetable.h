// Per-vertex timetables in the exact format of the paper's Tables 1-4:
// for one vertex, the message received from its parent / a child and sent
// to its parent / children at every time unit.  The tables_1_to_4 bench
// regenerates the published tables from the ConcurrentUpDown schedule on
// the Fig. 5 tree with this module.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

struct VertexTimetable {
  graph::Vertex vertex = 0;
  /// Entry per time unit 0..total_time; receive rows are indexed by the
  /// time of *receipt* (send time + 1), send rows by the send time.
  std::vector<std::optional<model::Message>> receive_from_parent;
  std::vector<std::optional<model::Message>> receive_from_child;
  std::vector<std::optional<model::Message>> send_to_parent;
  std::vector<std::optional<model::Message>> send_to_children;
};

/// Extracts the four rows for `v` from a tree-gossip schedule.
[[nodiscard]] VertexTimetable vertex_timetable(const Instance& instance,
                                               const model::Schedule& schedule,
                                               graph::Vertex v);

/// Renders in the paper's layout: a Time header row and one row per
/// non-empty stream, blanks shown as '-'.
[[nodiscard]] std::string render_timetable(const VertexTimetable& table);

}  // namespace mg::gossip
