file(REMOVE_RECURSE
  "CMakeFiles/paper_invariants_test.dir/paper_invariants_test.cpp.o"
  "CMakeFiles/paper_invariants_test.dir/paper_invariants_test.cpp.o.d"
  "paper_invariants_test"
  "paper_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
