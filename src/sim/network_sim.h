// Round-based network simulator.  Where the model validator *enforces* the
// communication rules, the simulator *executes* a schedule and reports what
// the network observes: per-node knowledge curves, completion times, an
// event trace, and behaviour under injected transmission faults (a dropped
// multicast models a failed link/round; gossip completion then degrades,
// which the fault-injection tests assert).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"
#include "obs/trace.h"
#include "support/bitset.h"

namespace mg::sim {

using graph::Vertex;
using model::Message;

struct SimOptions {
  /// Record the full send/receive event trace (O(deliveries) memory).
  bool record_trace = false;
  /// Transmissions to drop, addressed as (round, sender).  Every matching
  /// transmission is suppressed entirely (no receiver gets the message).
  std::vector<std::pair<std::size_t, Vertex>> drop;
  /// Streaming alternative to record_trace: every send/receive event is
  /// pushed here as it happens ("send" carries the fan-out |D|).  Works
  /// independently of record_trace; nullptr disables streaming.
  obs::TraceSink* sink = nullptr;
};

struct SimEvent {
  enum class Kind : std::uint8_t { kSend, kReceive };
  Kind kind = Kind::kSend;
  std::size_t time = 0;
  Vertex node = 0;
  Message message = 0;
  Vertex peer = 0;  ///< first receiver for kSend; sender for kReceive
};

struct SimResult {
  /// True when every node ends holding all n messages.
  bool completed = false;
  /// Latest receive time of a non-dropped transmission.
  std::size_t total_time = 0;
  /// Per-node earliest time the hold set became complete (0 if never).
  std::vector<std::size_t> completion_time;
  /// knowledge[t] = total number of (node, message) pairs known at time t,
  /// from n at t=0 up to n*n on completion; one entry per time unit.
  std::vector<std::size_t> knowledge;
  /// Per-node count of messages still missing at the end.
  std::vector<std::size_t> missing;
  /// Transmissions skipped because the sender did not hold the message —
  /// the downstream cascade of an injected drop.
  std::size_t skipped_sends = 0;
  /// Final per-node hold sets (bit m = node knows message m) — the input
  /// for gossip::greedy_completion_schedule after a faulty run.
  std::vector<DynamicBitset> final_holds;
  std::vector<SimEvent> trace;  ///< populated when record_trace
};

/// Executes `schedule` on network `g`.  `initial[v]` is the message held by
/// v at time 0 (empty = identity).  Unlike the validator this does not
/// enforce the conflict rules — pair it with validate_schedule when the
/// schedule's legality is in question.  It does apply the physical
/// constraint that a node cannot transmit a message it never received, so
/// injected drops cascade realistically (`skipped_sends`).
[[nodiscard]] SimResult simulate(const graph::Graph& g,
                                 const model::Schedule& schedule,
                                 const std::vector<Message>& initial = {},
                                 const SimOptions& options = {});

}  // namespace mg::sim
