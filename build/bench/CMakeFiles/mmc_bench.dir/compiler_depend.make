# Empty compiler generated dependencies file for mmc_bench.
# This may be replaced when dependencies are built.
