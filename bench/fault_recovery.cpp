// Extension bench: fault drill + repair.  A fixed offline schedule has no
// retransmission, so a dropped multicast starves part of the network (the
// simulator shows the cascade); the recovery module then builds a greedy
// completion schedule on the ORIGINAL network from the degraded hold state.
// Reported: how much knowledge one drop destroys and how cheap the repair
// is compared to re-running the whole gossip.
#include <cstdio>

#include "gossip/recovery.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "sim/network_sim.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(31);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"fig4", graph::fig4_network()},
      {"grid 6x6", graph::grid(6, 6)},
      {"hypercube 5", graph::hypercube(5)},
      {"random geometric 50", graph::random_geometric(50, 0.25, rng)},
      {"binary tree 31", graph::k_ary_tree(31, 2)},
  };

  TextTable table;
  table.new_row();
  for (const char* h :
       {"network", "n", "gossip rounds", "drop at", "starved nodes",
        "missing pairs", "cascaded skips", "repair rounds", "repair/gossip"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto sol = gossip::solve_gossip(g);
    all_ok = all_ok && sol.report.ok;
    const auto root = sol.instance.tree().root();
    const std::size_t drop_round = sol.schedule.total_time() / 3;

    sim::SimOptions faults;
    faults.drop.emplace_back(drop_round, root);
    const auto run = sim::simulate(sol.instance.tree().as_graph(),
                                   sol.schedule, sol.instance.initial(),
                                   faults);

    std::size_t starved = 0;
    std::size_t missing_pairs = 0;
    for (const auto m : run.missing) {
      starved += m > 0 ? 1 : 0;
      missing_pairs += m;
    }

    const auto repair = gossip::greedy_completion_schedule(g, run.final_holds);
    const auto report = model::validate_schedule_general(
        g, repair, gossip::holds_to_initial_sets(run.final_holds),
        g.vertex_count());
    all_ok = all_ok && report.ok;

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(sol.schedule.total_time());
    table.cell(drop_round);
    table.cell(starved);
    table.cell(missing_pairs);
    table.cell(run.skipped_sends);
    table.cell(repair.total_time());
    table.cell(static_cast<double>(repair.total_time()) /
                   static_cast<double>(sol.schedule.total_time()),
               2);
  }

  std::printf(
      "Fault drill: drop the root's multicast one third into the gossip,\n"
      "then repair from the degraded state on the original network\n"
      "(recovery may use non-tree edges):\n\n%s\nall repairs "
      "validator-clean: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
