#include "model/validator.h"

#include <algorithm>
#include <sstream>

#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::model {

namespace {

std::string describe(const Transmission& tx, std::size_t t) {
  std::ostringstream out;
  out << "round " << t << ", msg " << tx.message << " from " << tx.sender;
  return out.str();
}

}  // namespace

ValidationReport validate_schedule_general(
    const graph::Graph& g, const Schedule& schedule,
    const std::vector<std::vector<Message>>& initial_sets,
    std::size_t message_count, const ValidatorOptions& options) {
  const graph::Vertex n = g.vertex_count();
  const CommModel& model =
      options.model != nullptr
          ? *options.model
          : builtin_model(options.variant == ModelVariant::kTelephone
                              ? ModelKind::kTelephone
                              : ModelKind::kMulticast);
  const bool collisions = model.collision_loss();
  ValidationReport report;

  if (initial_sets.size() != n) {
    report.error = "initial assignment size mismatch";
    return report;
  }
  std::vector<DynamicBitset> hold(n, DynamicBitset(message_count));
  std::vector<std::size_t> lacking(n, 0);
  for (graph::Vertex v = 0; v < n; ++v) {
    for (Message m : initial_sets[v]) {
      if (m >= message_count) {
        report.error = "initial message id out of range";
        return report;
      }
      hold[v].set(m);
    }
    lacking[v] = message_count - hold[v].count();
  }
  if (collisions) report.completion_time.assign(n, 0);

  // Arrivals from round t are applied at the start of processing round t+1
  // (receive-before-send), recorded here as (receiver, message) pairs.
  std::vector<std::pair<graph::Vertex, Message>> in_flight;

  std::vector<std::size_t> receiver_seen(n, SIZE_MAX);
  std::vector<std::size_t> sender_seen(n, SIZE_MAX);
  // Same-round arrivals per receiver, for the collision verdict (only
  // maintained under a collision-loss model).
  std::vector<std::size_t> incoming(collisions ? n : 0, 0);

  // Applies the previous round's candidate deliveries to the hold sets.
  // Under a collision model a candidate lands only if the receiver was not
  // itself transmitting (half-duplex) and heard exactly one transmission;
  // `prev` is the round the candidates were sent in.
  const auto apply_in_flight = [&](std::size_t prev, std::size_t at) {
    for (const auto& [receiver, message] : in_flight) {
      if (collisions) {
        if (sender_seen[receiver] == prev || incoming[receiver] >= 2) {
          ++report.collided;
          continue;
        }
        if (!hold[receiver].test(message)) {
          hold[receiver].set(message);
          if (--lacking[receiver] == 0) report.completion_time[receiver] = at;
        }
        continue;
      }
      hold[receiver].set(message);
    }
    in_flight.clear();
  };

  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    apply_in_flight(t == 0 ? SIZE_MAX : t - 1, t);
    if (collisions) {
      for (graph::Vertex v = 0; v < n; ++v) incoming[v] = 0;
    }

    for (const auto& tx : schedule.round(t)) {
      if (tx.sender >= n) {
        report.error = "sender index out of range at " + describe(tx, t);
        return report;
      }
      if (tx.message >= message_count) {
        report.error = "message id out of range at " + describe(tx, t);
        return report;
      }
      if (tx.receivers.empty()) {
        report.error = "empty receiver set at " + describe(tx, t);
        return report;
      }
      if (std::string shape =
              model.receiver_set_error(g, tx.sender, tx.receivers);
          !shape.empty()) {
        report.error = shape + " at " + describe(tx, t);
        return report;
      }
      if (sender_seen[tx.sender] == t) {
        report.error =
            "processor sends two messages in one round at " + describe(tx, t);
        return report;
      }
      sender_seen[tx.sender] = t;
      if (!hold[tx.sender].test(tx.message)) {
        report.error = "sender does not hold the message at " +
                       describe(tx, t);
        return report;
      }
      for (graph::Vertex r : tx.receivers) {
        if (r >= n) {
          report.error = "receiver out of range at " + describe(tx, t);
          return report;
        }
        if (r == tx.sender) {
          report.error = "self-delivery at " + describe(tx, t);
          return report;
        }
        if (model.requires_adjacency() && !g.has_edge(tx.sender, r)) {
          report.error = "receiver " + std::to_string(r) +
                         " not adjacent to sender at " + describe(tx, t);
          return report;
        }
        if (!collisions) {
          if (receiver_seen[r] == t) {
            report.error = "processor " + std::to_string(r) +
                           " receives two messages in one round at " +
                           describe(tx, t);
            return report;
          }
          receiver_seen[r] = t;
        } else {
          ++incoming[r];
        }
        in_flight.emplace_back(r, tx.message);
      }
    }
  }
  const std::size_t rounds = schedule.round_count();
  apply_in_flight(rounds == 0 ? SIZE_MAX : rounds - 1, rounds);

  report.total_time = schedule.total_time();

  if (options.require_completion) {
    for (graph::Vertex v = 0; v < n; ++v) {
      if (!hold[v].all()) {
        report.error = "processor " + std::to_string(v) +
                       " is missing messages at the end (" +
                       std::to_string(hold[v].count()) + "/" +
                       std::to_string(message_count) + ")";
        return report;
      }
    }
    if (collisions) {
      // Completion times were tracked in the delivery pass (the replay
      // below assumes every scheduled receiver decodes, which is exactly
      // what a collision model does not guarantee).
      report.ok = true;
      return report;
    }
    // Second pass for per-processor completion times.
    report.completion_time.assign(n, 0);
    std::vector<DynamicBitset> again(n, DynamicBitset(message_count));
    std::vector<std::size_t> missing(n, 0);
    for (graph::Vertex v = 0; v < n; ++v) {
      for (Message m : initial_sets[v]) again[v].set(m);
      missing[v] = message_count - again[v].count();
    }
    for (std::size_t t = 0; t < schedule.round_count(); ++t) {
      for (const auto& tx : schedule.round(t)) {
        for (graph::Vertex r : tx.receivers) {
          if (!again[r].test(tx.message)) {
            again[r].set(tx.message);
            if (--missing[r] == 0) report.completion_time[r] = t + 1;
          }
        }
      }
    }
  }

  report.ok = true;
  return report;
}

ValidationReport validate_schedule(const graph::Graph& g,
                                   const Schedule& schedule,
                                   const std::vector<Message>& initial,
                                   const ValidatorOptions& options) {
  const graph::Vertex n = g.vertex_count();
  if (!initial.empty() && initial.size() != n) {
    ValidationReport report;
    report.error = "initial assignment size mismatch";
    return report;
  }
  std::vector<std::vector<Message>> initial_sets(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    initial_sets[v] = {initial.empty() ? v : initial[v]};
  }
  return validate_schedule_general(g, schedule, initial_sets, n, options);
}

ValidationReport validate_broadcast(const graph::Graph& g,
                                    const Schedule& schedule,
                                    graph::Vertex source) {
  ValidatorOptions options;
  options.require_completion = false;
  ValidationReport report = validate_schedule(g, schedule, {}, options);
  if (!report.ok) return report;

  const graph::Vertex n = g.vertex_count();
  std::vector<char> has(n, 0);
  has[source] = 1;
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      if (tx.message != source) {
        report.ok = false;
        report.error = "broadcast schedule carries a foreign message";
        return report;
      }
      for (graph::Vertex r : tx.receivers) has[r] = 1;
    }
  }
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!has[v]) {
      report.ok = false;
      report.error =
          "processor " + std::to_string(v) + " never receives the broadcast";
      return report;
    }
  }
  return report;
}

}  // namespace mg::model
