file(REMOVE_RECURSE
  "CMakeFiles/telephone_test.dir/telephone_test.cpp.o"
  "CMakeFiles/telephone_test.dir/telephone_test.cpp.o.d"
  "telephone_test"
  "telephone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
