#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/exposition.h"

namespace mg::obs {

std::uint64_t Snapshot::counter(std::string_view name) const {
  const auto it = std::find_if(
      counters.begin(), counters.end(),
      [&](const auto& entry) { return entry.first == name; });
  return it == counters.end() ? 0 : it->second;
}

HistogramSnapshot Snapshot::histogram(std::string_view name) const {
  const auto it = std::find_if(
      histograms.begin(), histograms.end(),
      [&](const auto& entry) { return entry.first == name; });
  return it == histograms.end() ? HistogramSnapshot{} : it->second;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  if (!enabled()) return scratch_counter_;
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Timer& Registry::timer(std::string_view name) {
  if (!enabled()) return scratch_timer_;
  const std::scoped_lock lock(mutex_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) return *it->second;
  return *timers_.emplace(std::string(name), std::make_unique<Timer>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  if (!enabled()) return scratch_histogram_;
  const std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void Registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
  scratch_counter_.reset();
  scratch_timer_.reset();
  scratch_histogram_.reset();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  const std::scoped_lock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    snap.timers.emplace_back(name, TimerSnapshot{t->total_ns(), t->count()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

void Registry::write_json(std::ostream& out) const {
  // The JSON shape lives in one place: the exposition sink the mg::net
  // daemon will mount serves exactly what this always wrote.
  JsonExposition().expose(snapshot(), out);
}

std::string Registry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace mg::obs
