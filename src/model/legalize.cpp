#include "model/legalize.h"

#include <algorithm>
#include <cstdint>

#include "support/contracts.h"

namespace mg::model {

namespace {

using graph::Vertex;

/// One packed sub-round under a broadcast-channel model: the transmitting
/// senders plus the deliveries the source schedule intends (and the packer
/// therefore guarantees collision-free).
struct SubRound {
  std::vector<const Transmission*> txs;
  std::vector<Vertex> senders;
  std::vector<Vertex> intended;  ///< receivers the source schedule aims at
};

/// True when adding `tx`'s full-neighborhood broadcast to `sub` keeps every
/// intended delivery — existing and new — decodable: no intended receiver
/// transmits, and each hears exactly one transmitting neighbor.
bool fits_broadcast_subround(const graph::Graph& g, const Transmission& tx,
                             const SubRound& sub) {
  for (const Vertex r : tx.receivers) {
    // New intended receiver r must not transmit and must not hear any
    // already-admitted sender.
    for (const Vertex s : sub.senders) {
      if (r == s || g.has_edge(s, r)) return false;
    }
  }
  for (const Vertex r : sub.intended) {
    // Existing intended receiver r must not start hearing tx.sender too,
    // and tx.sender transmitting must not deafen a delivery aimed at it.
    if (r == tx.sender || g.has_edge(tx.sender, r)) return false;
  }
  return true;
}

Schedule legalize_telephone(const Schedule& schedule) {
  Schedule out;
  std::size_t offset = 0;
  const std::size_t src_rounds = schedule.total_time();
  for (std::size_t t = 0; t < src_rounds; ++t) {
    std::size_t width = 1;
    for (const auto& tx : schedule.round(t)) {
      width = std::max(width, tx.receivers.size());
    }
    for (const auto& tx : schedule.round(t)) {
      for (std::size_t k = 0; k < tx.receivers.size(); ++k) {
        out.add(offset + k, {tx.message, tx.sender, {tx.receivers[k]}});
      }
    }
    offset += width;
  }
  out.trim();
  return out;
}

Schedule legalize_broadcast_channel(const graph::Graph& g,
                                    const Schedule& schedule) {
  Schedule out;
  std::size_t offset = 0;
  const std::size_t src_rounds = schedule.total_time();
  std::vector<SubRound> block;
  for (std::size_t t = 0; t < src_rounds; ++t) {
    block.clear();
    for (const auto& tx : schedule.round(t)) {
      SubRound* slot = nullptr;
      for (SubRound& sub : block) {
        if (fits_broadcast_subround(g, tx, sub)) {
          slot = &sub;
          break;
        }
      }
      if (slot == nullptr) {
        // A transmission always fits alone: D is a subset of N(sender), a
        // lone transmitter is every listener's only transmitting neighbor.
        block.emplace_back();
        slot = &block.back();
      }
      slot->txs.push_back(&tx);
      slot->senders.push_back(tx.sender);
      slot->intended.insert(slot->intended.end(), tx.receivers.begin(),
                            tx.receivers.end());
    }
    if (block.empty()) block.emplace_back();  // keep source pacing
    for (std::size_t k = 0; k < block.size(); ++k) {
      for (const Transmission* tx : block[k].txs) {
        const auto neighbors = g.neighbors(tx->sender);
        out.add(offset + k,
                {tx->message, tx->sender,
                 std::vector<Vertex>(neighbors.begin(), neighbors.end())});
      }
    }
    offset += block.size();
  }
  out.trim();
  return out;
}

}  // namespace

AdaptResult adapt_schedule(const graph::Graph& g, const Schedule& schedule,
                           const CommModel& model) {
  AdaptResult result;
  switch (model.kind()) {
    case ModelKind::kMulticast:
    case ModelKind::kDirect:
      // Direct addressing relaxes the adjacency rule only: every
      // multicast-legal schedule is already legal.
      result.schedule = schedule;
      break;
    case ModelKind::kTelephone:
      result.schedule = legalize_telephone(schedule);
      break;
    case ModelKind::kRadio:
    case ModelKind::kBeep:
      result.schedule = legalize_broadcast_channel(g, schedule);
      break;
  }
  result.structural_rounds = result.schedule.total_time();
  result.model_rounds =
      model.model_time(result.structural_rounds, g.vertex_count());
  const std::size_t src = schedule.total_time();
  result.stretch =
      result.structural_rounds > src ? result.structural_rounds - src : 0;
  return result;
}

Schedule direct_ring_schedule(graph::Vertex n,
                              const std::vector<Message>& initial) {
  MG_EXPECTS(initial.empty() || initial.size() == n);
  Schedule out;
  if (n < 2) return out;
  const auto message_of = [&](Vertex origin) {
    return initial.empty() ? static_cast<Message>(origin) : initial[origin];
  };
  // Round t: node i forwards the message originating at ring position
  // i - t to node i + 1; it received that message at time t (t > 0), so
  // the relay is exactly receive-before-send tight.
  for (std::size_t t = 0; t + 1 < n; ++t) {
    for (Vertex i = 0; i < n; ++i) {
      const Vertex origin =
          static_cast<Vertex>((i + n - (t % n)) % n);
      out.add(t, {message_of(origin), i, {static_cast<Vertex>((i + 1) % n)}});
    }
  }
  return out;
}

Schedule radio_greedy_schedule(const graph::Graph& g,
                               const std::vector<Message>& initial) {
  const Vertex n = g.vertex_count();
  MG_EXPECTS(initial.empty() || initial.size() == n);
  Schedule out;
  if (n < 2) return out;

  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> hold(static_cast<std::size_t>(n) * words, 0);
  std::vector<std::size_t> known(n, 1);
  for (Vertex v = 0; v < n; ++v) {
    const Message m = initial.empty() ? v : initial[v];
    MG_EXPECTS(m < n);
    hold[static_cast<std::size_t>(v) * words + (m >> 6)] |=
        std::uint64_t{1} << (m & 63);
  }

  struct Candidate {
    Vertex sender = 0;
    Message message = 0;
    std::size_t score = 0;  ///< neighbors currently lacking the message
  };
  std::vector<Candidate> candidates;
  std::vector<Message> next_m(n, 0);  // per-sender fair rotation pointer
  std::vector<std::uint64_t> useful(words, 0);
  // Closed-neighborhood occupancy for the 2-hop independence rule,
  // round-stamped so no per-round clear is needed.
  std::vector<std::size_t> occupied(n, SIZE_MAX);

  std::size_t complete = 0;
  for (Vertex v = 0; v < n; ++v) complete += known[v] == n ? 1u : 0u;

  for (std::size_t t = 0; complete < n; ++t) {
    candidates.clear();
    for (Vertex v = 0; v < n; ++v) {
      const auto* hv = &hold[static_cast<std::size_t>(v) * words];
      bool any = false;
      for (std::size_t w = 0; w < words; ++w) useful[w] = 0;
      for (const Vertex r : g.neighbors(v)) {
        const auto* hr = &hold[static_cast<std::size_t>(r) * words];
        for (std::size_t w = 0; w < words; ++w) {
          useful[w] |= hv[w] & ~hr[w];
          any = any || useful[w] != 0;
        }
      }
      if (!any) continue;
      // First useful message at or after the rotation pointer (wrapping),
      // so low-id messages do not starve the rest of the flood.
      Message chosen = static_cast<Message>(n);
      for (std::size_t step = 0; step < 2; ++step) {
        const Message lo = step == 0 ? next_m[v] : 0;
        const Message hi = step == 0 ? static_cast<Message>(n) : next_m[v];
        for (Message m = lo; m < hi; ++m) {
          if ((useful[m >> 6] >> (m & 63)) & 1) {
            chosen = m;
            break;
          }
        }
        if (chosen < n) break;
      }
      MG_ASSERT(chosen < n);
      std::size_t score = 0;
      for (const Vertex r : g.neighbors(v)) {
        const auto* hr = &hold[static_cast<std::size_t>(r) * words];
        score += ((hr[chosen >> 6] >> (chosen & 63)) & 1) == 0 ? 1 : 0;
      }
      candidates.push_back({v, chosen, score});
    }
    // A connected incomplete network always has a knowledge frontier.
    MG_ASSERT(!candidates.empty());
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.score > b.score;
                     });
    bool sent = false;
    for (const Candidate& c : candidates) {
      if (occupied[c.sender] == t) continue;
      bool clash = false;
      for (const Vertex r : g.neighbors(c.sender)) {
        if (occupied[r] == t) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      occupied[c.sender] = t;
      for (const Vertex r : g.neighbors(c.sender)) occupied[r] = t;
      const auto neighbors = g.neighbors(c.sender);
      out.add(t, {c.message, c.sender,
                  std::vector<Vertex>(neighbors.begin(), neighbors.end())});
      next_m[c.sender] = static_cast<Message>((c.message + 1) % n);
      sent = true;
      // Deliveries land at t + 1; applying them before round t + 1's
      // candidate scan is exactly receive-before-send.
      for (const Vertex r : neighbors) {
        std::uint64_t& w =
            hold[static_cast<std::size_t>(r) * words + (c.message >> 6)];
        const std::uint64_t mask = std::uint64_t{1} << (c.message & 63);
        if ((w & mask) == 0) {
          w |= mask;
          if (++known[r] == n) ++complete;
        }
      }
    }
    MG_ASSERT(sent);  // the top candidate always fits an empty round
  }
  return out;
}

}  // namespace mg::model
