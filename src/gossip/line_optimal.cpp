#include "gossip/line_optimal.h"

#include <algorithm>
#include <tuple>

#include "support/contracts.h"

namespace mg::gossip {

namespace {

using model::Message;
using model::Schedule;

/// Position (-m..+m) to processor index (0..2m).
struct LineMap {
  std::uint32_t m;
  [[nodiscard]] graph::Vertex vertex(std::int64_t position) const {
    MG_ASSERT(position >= -static_cast<std::int64_t>(m) &&
              position <= static_cast<std::int64_t>(m));
    return static_cast<graph::Vertex>(position +
                                      static_cast<std::int64_t>(m));
  }
  [[nodiscard]] Message message(std::int64_t position) const {
    return vertex(position);
  }
};

}  // namespace

model::Schedule line_optimal_gossip(std::uint32_t m) {
  MG_EXPECTS(m >= 1);
  const LineMap line{m};
  Schedule schedule;

  // Collected as (time, message, sender, receiver) unicasts; same-(time,
  // sender) entries merge into one multicast at the end (they always carry
  // the same message -- asserted).
  struct Send {
    std::size_t time;
    Message message;
    graph::Vertex sender;
    graph::Vertex receiver;
  };
  std::vector<Send> sends;
  auto emit = [&](std::size_t t, std::int64_t message_pos,
                  std::int64_t sender_pos, std::int64_t receiver_pos) {
    sends.push_back({t, line.message(message_pos), line.vertex(sender_pos),
                     line.vertex(receiver_pos)});
  };

  const auto M = static_cast<std::int64_t>(m);

  // ---- Center: own message both ways at 0; alternate-arm relays.
  emit(0, 0, 0, -1);
  emit(0, 0, 0, +1);
  for (std::int64_t q = 1; q <= M; ++q) {
    emit(static_cast<std::size_t>(2 * q - 1), -q, 0, +1);  // mu(-q) rightward
    emit(static_cast<std::size_t>(2 * q), +q, 0, -1);      // mu(+q) leftward
  }

  // ---- Left arm.
  for (std::int64_t r = 1; r <= M; ++r) {
    // Own message at r - 1, one multicast to both neighbors.
    emit(static_cast<std::size_t>(r - 1), -r, -r, -(r - 1));
    if (r < M) emit(static_cast<std::size_t>(r - 1), -r, -r, -(r + 1));
    if (r == M) continue;  // the end only launches its own message

    // Inward relays: mu(-q), q > r, the round it arrives.
    for (std::int64_t q = r + 1; q <= M; ++q) {
      emit(static_cast<std::size_t>(2 * q - r - 1), -q, -r, -(r - 1));
    }
    // Downward: the center's message and the right arm's messages.
    emit(static_cast<std::size_t>(r), 0, -r, -(r + 1));
    for (std::int64_t q = 1; q <= M; ++q) {
      emit(static_cast<std::size_t>(2 * q + r), +q, -r, -(r + 1));
    }
    // Inner-left messages continue outward through the late slots.
    if (r >= 2) {
      emit(static_cast<std::size_t>(2 * M - r + 1), -(r - 1), -r, -(r + 1));
    }
    for (std::int64_t q = 1; q <= r - 2; ++q) {
      emit(static_cast<std::size_t>(2 * M + r - 2 * q - 1), -q, -r,
           -(r + 1));
    }
  }

  // ---- Right arm (the asymmetric half).
  for (std::int64_t r = 1; r <= M; ++r) {
    // Own message: inward at r, outward separately at r - 1.
    emit(static_cast<std::size_t>(r), +r, +r, +(r - 1));
    if (r == M) continue;
    emit(static_cast<std::size_t>(r - 1), +r, +r, +(r + 1));

    // Inward relays: mu(+q), q > r.
    for (std::int64_t q = r + 1; q <= M; ++q) {
      emit(static_cast<std::size_t>(2 * q - r), +q, +r, +(r - 1));
    }
    // Downward: the left arm's messages the round they arrive.
    for (std::int64_t q = 1; q <= M; ++q) {
      emit(static_cast<std::size_t>(2 * q + r - 1), -q, +r, +(r + 1));
    }
    // The center's message is stuck until the tail of the schedule.
    emit(static_cast<std::size_t>(2 * M + r), 0, +r, +(r + 1));
    // Inner-right messages through the late slots.
    if (r >= 2) {
      emit(static_cast<std::size_t>(2 * M - r + 2), +(r - 1), +r, +(r + 1));
    }
    for (std::int64_t q = 1; q <= r - 2; ++q) {
      emit(static_cast<std::size_t>(2 * M + r - 2 * q), +q, +r, +(r + 1));
    }
  }

  // ---- Merge unicasts into multicasts per (time, sender).
  std::sort(sends.begin(), sends.end(), [](const Send& a, const Send& b) {
    return std::tie(a.time, a.sender, a.receiver) <
           std::tie(b.time, b.sender, b.receiver);
  });
  for (std::size_t idx = 0; idx < sends.size();) {
    const Send& head = sends[idx];
    std::vector<graph::Vertex> receivers;
    std::size_t next = idx;
    while (next < sends.size() && sends[next].time == head.time &&
           sends[next].sender == head.sender) {
      MG_ASSERT_MSG(sends[next].message == head.message,
                    "line-optimal protocol double-books a send slot");
      receivers.push_back(sends[next].receiver);
      ++next;
    }
    schedule.add(head.time,
                 {head.message, head.sender, std::move(receivers)});
    idx = next;
  }
  schedule.trim();
  MG_ENSURES(schedule.total_time() == line_optimal_time(m));
  return schedule;
}

model::Schedule even_line_gossip(std::uint32_t m) {
  MG_EXPECTS(m >= 1);
  const graph::Vertex n = 2 * m;
  Schedule schedule;
  if (m == 1) {  // two processors: one simultaneous exchange
    schedule.add(0, {0, 0, {1}});
    schedule.add(0, {1, 1, {0}});
    return schedule;
  }

  // Indexing: left arm L_q = c1 - q, right arm R_q = c2 + q (q = 1..m-1),
  // centers c1 = m - 1 and c2 = m.  Message id == processor index.
  const graph::Vertex c1 = m - 1;
  const graph::Vertex c2 = m;
  auto left = [&](std::uint32_t q) { return c1 - q; };
  auto right = [&](std::uint32_t q) { return c2 + q; };

  // Fixed sends: (time, message, sender, receiver) unicasts merged later.
  struct Send {
    std::size_t time;
    Message message;
    graph::Vertex sender;
    graph::Vertex receiver;
  };
  std::vector<Send> fixed;

  // Centers: own message at 0 (to the first arm vertex and the twin
  // center); the arm stream crosses over the round it arrives; the twin's
  // stream is relayed into the own arm the round it arrives.
  fixed.push_back({0, c1, c1, c2});
  fixed.push_back({0, c2, c2, c1});
  if (m >= 2) {
    fixed.push_back({0, c1, c1, left(1)});
    fixed.push_back({0, c2, c2, right(1)});
  }
  for (std::uint32_t q = 1; q <= m - 1; ++q) {
    fixed.push_back({2 * q, left(q), c1, c2});    // left stream crosses
    fixed.push_back({2 * q, right(q), c2, c1});   // right stream crosses
  }
  // Twin-stream relays into the arms: c1 receives mu(c2) at 1 and
  // mu(R_q) at 2q+1, relaying each to L_1 the same round (and mirrored).
  fixed.push_back({1, c2, c1, left(1)});
  fixed.push_back({1, c1, c2, right(1)});
  for (std::uint32_t q = 1; q <= m - 1; ++q) {
    fixed.push_back({2 * q + 1, right(q), c1, left(1)});
    fixed.push_back({2 * q + 1, left(q), c2, right(1)});
  }

  // Arms: launch own outward at q - 1 and inward at q; relay the inward
  // stream immediately (mu(A_q) passes A_p at 2q - p).
  for (std::uint32_t q = 1; q <= m - 1; ++q) {
    for (const bool left_arm : {true, false}) {
      const graph::Vertex self = left_arm ? left(q) : right(q);
      const graph::Vertex inner = left_arm ? (q == 1 ? c1 : left(q - 1))
                                           : (q == 1 ? c2 : right(q - 1));
      if (q + 1 <= m - 1) {
        const graph::Vertex outer = left_arm ? left(q + 1) : right(q + 1);
        fixed.push_back({q - 1, self, self, outer});
      }
      fixed.push_back({q, self, self, inner});
      for (std::uint32_t qq = q + 1; qq <= m - 1; ++qq) {
        const graph::Vertex origin = left_arm ? left(qq) : right(qq);
        fixed.push_back({2 * qq - q, origin, self, inner});
      }
    }
  }

  // Dynamic part: every message arriving at an arm vertex from its INNER
  // neighbor continues outward, packed greedily into the free send slots
  // (sender idle, outer neighbor free to receive).  Simulate round by
  // round; fixed sends take priority.
  const std::size_t horizon = even_line_time(m) + 2;  // safety margin
  std::vector<std::vector<char>> send_busy(n,
                                           std::vector<char>(horizon + 2, 0));
  std::vector<std::vector<char>> recv_busy(n,
                                           std::vector<char>(horizon + 2, 0));
  for (const auto& send : fixed) {
    MG_ASSERT_MSG(send.time < horizon, "fixed send beyond horizon");
    // Same-(time, sender) fixed sends are same-message multicasts,
    // asserted during the merge below.
    send_busy[send.sender][send.time] = 1;
    MG_ASSERT_MSG(!recv_busy[send.receiver][send.time + 1],
                  "fixed receive slot double-booked");
    recv_busy[send.receiver][send.time + 1] = 1;
  }

  // Outward queues per arm vertex: (message, available-from time).
  std::vector<std::vector<std::pair<Message, std::size_t>>> queue(n);
  std::vector<std::size_t> queue_head(n, 0);

  auto outer_of = [&](graph::Vertex v) -> graph::Vertex {
    if (v < c1 || v > c2) {
      return v < c1 ? (v > 0 ? v - 1 : graph::kNoVertex)
                    : (v + 1 < n ? v + 1 : graph::kNoVertex);
    }
    return graph::kNoVertex;  // centers handled by the fixed schedule
  };
  auto is_inner_neighbor = [&](graph::Vertex v, graph::Vertex from) {
    // true when `from` is v's neighbor on the center side
    if (v < c1) return from == v + 1;
    if (v > c2) return from == v - 1;
    return false;
  };

  std::vector<Send> dynamic;
  for (std::size_t t = 0; t < horizon; ++t) {
    // Deliveries arriving at time t (sent at t-1) enter outward queues.
    auto enqueue_arrivals = [&](const std::vector<Send>& sends,
                                std::size_t from, std::size_t to) {
      for (std::size_t idx = from; idx < to; ++idx) {
        const Send& send = sends[idx];
        if (send.time + 1 != t) continue;
        if (is_inner_neighbor(send.receiver, send.sender) &&
            outer_of(send.receiver) != graph::kNoVertex) {
          queue[send.receiver].emplace_back(send.message, t);
        }
      }
    };
    if (t >= 1) {
      enqueue_arrivals(fixed, 0, fixed.size());
      enqueue_arrivals(dynamic, 0, dynamic.size());
    }

    // Greedy outward sends in the free slots.
    for (graph::Vertex v = 0; v < n; ++v) {
      if (send_busy[v][t]) continue;
      if (queue_head[v] >= queue[v].size()) continue;
      const auto& [message, avail] = queue[v][queue_head[v]];
      if (avail > t) continue;  // queue is in arrival order
      const graph::Vertex outer = outer_of(v);
      MG_ASSERT(outer != graph::kNoVertex);
      if (recv_busy[outer][t + 1]) continue;
      send_busy[v][t] = 1;
      recv_busy[outer][t + 1] = 1;
      dynamic.push_back({t, message, v, outer});
      ++queue_head[v];
    }
  }
  for (graph::Vertex v = 0; v < n; ++v) {
    MG_ASSERT_MSG(queue_head[v] == queue[v].size(),
                  "even-line outward queue not drained within the horizon");
  }

  // Merge all unicasts into multicasts per (time, sender).
  std::vector<Send> all(fixed);
  all.insert(all.end(), dynamic.begin(), dynamic.end());
  std::sort(all.begin(), all.end(), [](const Send& a, const Send& b) {
    return std::tie(a.time, a.sender, a.receiver) <
           std::tie(b.time, b.sender, b.receiver);
  });
  for (std::size_t idx = 0; idx < all.size();) {
    const Send& head = all[idx];
    std::vector<graph::Vertex> receivers;
    std::size_t next = idx;
    while (next < all.size() && all[next].time == head.time &&
           all[next].sender == head.sender) {
      MG_ASSERT_MSG(all[next].message == head.message,
                    "even-line protocol double-books a send slot");
      receivers.push_back(all[next].receiver);
      ++next;
    }
    schedule.add(head.time, {head.message, head.sender, std::move(receivers)});
    idx = next;
  }
  schedule.trim();
  return schedule;
}

}  // namespace mg::gossip
