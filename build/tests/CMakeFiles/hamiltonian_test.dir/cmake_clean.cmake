file(REMOVE_RECURSE
  "CMakeFiles/hamiltonian_test.dir/hamiltonian_test.cpp.o"
  "CMakeFiles/hamiltonian_test.dir/hamiltonian_test.cpp.o.d"
  "hamiltonian_test"
  "hamiltonian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamiltonian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
