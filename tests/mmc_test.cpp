// Tests for the MultiMessage Multicasting substrate.
#include <gtest/gtest.h>

#include "mmc/greedy.h"
#include "mmc/problem.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace mg::mmc {
namespace {

MmcInstance random_instance(graph::Vertex n, std::size_t messages,
                            std::size_t max_fanout, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MmcMessage> list;
  for (std::size_t id = 0; id < messages; ++id) {
    MmcMessage message;
    message.id = static_cast<model::Message>(id);
    message.source = static_cast<graph::Vertex>(rng.below(n));
    const std::size_t fanout = 1 + rng.below(max_fanout);
    std::vector<graph::Vertex> all;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (v != message.source) all.push_back(v);
    }
    rng.shuffle(all);
    message.destinations.assign(all.begin(),
                                all.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(fanout,
                                                           all.size())));
    std::sort(message.destinations.begin(), message.destinations.end());
    list.push_back(std::move(message));
  }
  return MmcInstance(n, std::move(list));
}

TEST(Mmc, DegreeComputation) {
  // Two messages from processor 0, one reception each at 1 and 2; and 2
  // receptions at processor 1 overall.
  std::vector<MmcMessage> messages;
  messages.push_back({0, 0, {1, 2}});
  messages.push_back({1, 0, {1}});
  const MmcInstance instance(3, std::move(messages));
  EXPECT_EQ(instance.degree(), 2u);  // 0 sends 2; 1 receives 2
}

TEST(Mmc, GossipRestrictionDegree) {
  const auto instance = MmcInstance::gossip_restriction(8);
  EXPECT_EQ(instance.degree(), 7u);
  EXPECT_EQ(instance.message_count(), 8u);
}

TEST(Mmc, InstanceValidation) {
  std::vector<MmcMessage> self;
  self.push_back({0, 1, {1}});
  EXPECT_THROW((void)MmcInstance(3, std::move(self)), ContractViolation);

  std::vector<MmcMessage> sparse_ids;
  sparse_ids.push_back({5, 0, {1}});
  EXPECT_THROW((void)MmcInstance(3, std::move(sparse_ids)),
               ContractViolation);
}

TEST(Mmc, GreedySolvesGossipRestrictionAtTheDegreeBound) {
  for (graph::Vertex n : {3u, 5u, 9u, 16u}) {
    const auto instance = MmcInstance::gossip_restriction(n);
    const auto schedule = greedy_mmc_schedule(instance);
    EXPECT_EQ(instance.check(schedule), "");
    EXPECT_EQ(schedule.total_time(), instance.degree()) << "n=" << n;
  }
}

TEST(Mmc, GreedySolvesRandomInstancesNearTheBound) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto instance = random_instance(10, 25, 6, seed);
    const auto schedule = greedy_mmc_schedule(instance);
    ASSERT_EQ(instance.check(schedule), "") << "seed=" << seed;
    EXPECT_GE(schedule.total_time(), instance.degree());
    EXPECT_LE(schedule.total_time(), 3 * instance.degree() + 2)
        << "seed=" << seed;
  }
}

TEST(Mmc, SingleMessageSingleRound) {
  std::vector<MmcMessage> messages;
  messages.push_back({0, 2, {0, 1, 3}});
  const MmcInstance instance(4, std::move(messages));
  const auto schedule = greedy_mmc_schedule(instance);
  EXPECT_EQ(instance.check(schedule), "");
  EXPECT_EQ(schedule.total_time(), 1u);
  EXPECT_EQ(schedule.transmission_count(), 1u);
}

TEST(Mmc, CheckCatchesMissingCoverage) {
  const auto instance = MmcInstance::gossip_restriction(4);
  model::Schedule partial;
  partial.add(0, {0, 0, {1, 2, 3}});  // only message 0 delivered
  EXPECT_NE(instance.check(partial), "");
}

TEST(Mmc, CheckCatchesRuleViolations) {
  const auto instance = MmcInstance::gossip_restriction(4);
  model::Schedule bad;
  bad.add(0, {0, 0, {1}});
  bad.add(0, {1, 1, {2}});
  bad.add(0, {2, 2, {1}});  // processor 1 receives twice in round 0
  EXPECT_NE(instance.check(bad).find("receives two"), std::string::npos);
}

TEST(Mmc, HeavyHubInstance) {
  // One processor originates many messages: the degree bound is its send
  // count; greedy must stay close.
  std::vector<MmcMessage> messages;
  for (std::size_t id = 0; id < 10; ++id) {
    messages.push_back({static_cast<model::Message>(id), 0,
                        {static_cast<graph::Vertex>(1 + id % 5)}});
  }
  const MmcInstance instance(6, std::move(messages));
  EXPECT_EQ(instance.degree(), 10u);
  const auto schedule = greedy_mmc_schedule(instance);
  EXPECT_EQ(instance.check(schedule), "");
  EXPECT_EQ(schedule.total_time(), 10u);  // the hub sends one per round
}

}  // namespace
}  // namespace mg::mmc
