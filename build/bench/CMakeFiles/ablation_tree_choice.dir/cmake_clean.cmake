file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_choice.dir/ablation_tree_choice.cpp.o"
  "CMakeFiles/ablation_tree_choice.dir/ablation_tree_choice.cpp.o.d"
  "ablation_tree_choice"
  "ablation_tree_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
