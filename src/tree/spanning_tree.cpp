#include "tree/spanning_tree.h"

#include <algorithm>

#include "graph/properties.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/thread_pool.h"

namespace mg::tree {

RootedTree RootedTree::from_parents(Vertex root, std::vector<Vertex> parent) {
  const auto n = static_cast<Vertex>(parent.size());
  MG_EXPECTS(n >= 1);
  MG_EXPECTS(root < n);
  MG_EXPECTS_MSG(parent[root] == graph::kNoVertex,
                 "root must have no parent");

  RootedTree t;
  t.root_ = root;
  t.parent_ = std::move(parent);

  // Children as CSR via counting sort: count, prefix-sum, fill.  Filling in
  // ascending v keeps each child run ascending — the canonical order.
  t.child_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (v == root) continue;
    MG_EXPECTS_MSG(t.parent_[v] < n, "non-root vertex missing a parent");
    ++t.child_offsets_[t.parent_[v] + 1];
  }
  for (Vertex v = 0; v < n; ++v) {
    t.child_offsets_[v + 1] += t.child_offsets_[v];
  }
  t.child_list_.resize(n - 1);
  std::vector<std::uint32_t> cursor(t.child_offsets_.begin(),
                                    t.child_offsets_.end() - 1);
  for (Vertex v = 0; v < n; ++v) {
    if (v == root) continue;
    t.child_list_[cursor[t.parent_[v]]++] = v;
  }

  // Levels via preorder walk; also validates acyclicity/reachability.
  t.level_.assign(n, 0);
  std::vector<Vertex> stack;
  stack.reserve(64);
  stack.push_back(root);
  Vertex visited = 0;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    ++visited;
    for (Vertex c : t.children(v)) {
      t.level_[c] = t.level_[v] + 1;
      t.height_ = std::max(t.height_, t.level_[c]);
      stack.push_back(c);
    }
  }
  MG_EXPECTS_MSG(visited == n, "parent array does not encode a single tree");
  return t;
}

std::vector<Vertex> RootedTree::preorder() const {
  std::vector<Vertex> order;
  order.reserve(vertex_count());
  std::vector<Vertex> stack{root_};
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    order.push_back(v);
    const auto kids = children(v);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

Graph RootedTree::as_graph() const {
  graph::GraphBuilder b(vertex_count());
  for (Vertex v = 0; v < vertex_count(); ++v) {
    if (v != root_) b.add_edge(v, parent_[v]);
  }
  return b.build();
}

RootedTree bfs_tree(const Graph& g, Vertex root) {
  MG_OBS_SCOPE_TIMER(bfs_timer, "tree.bfs_ns");
  MG_OBS_SPAN(bfs_span, "tree.bfs");
  const Vertex n = g.vertex_count();
  MG_EXPECTS(root < n);
  std::vector<Vertex> parent(n, graph::kNoVertex);
  std::vector<std::uint32_t> dist(n, graph::kUnreachable);
  std::vector<Vertex> frontier;
  std::vector<Vertex> next;
  frontier.reserve(64);
  next.reserve(64);
  frontier.push_back(root);
  dist[root] = 0;
  Vertex seen = 1;
  std::uint64_t edge_visits = 0;  // directed adjacency entries scanned
  while (!frontier.empty()) {
    next.clear();
    for (Vertex u : frontier) {
      edge_visits += g.degree(u);
      const std::uint32_t du = dist[u];
      for (Vertex v : g.neighbors(u)) {
        if (dist[v] == graph::kUnreachable) {
          dist[v] = du + 1;
          parent[v] = u;
          next.push_back(v);
          ++seen;
        } else if (dist[v] == du + 1 && u < parent[v]) {
          // Same next level, smaller-id parent: min-update in place of the
          // historical per-level frontier sort.  The frontier order no
          // longer matters — every (parent, child) candidate in the
          // previous level is examined, so each child ends up with its
          // smallest-id previous-level neighbor, the same tree the sorted
          // frontier produced.
          parent[v] = u;
        }
      }
    }
    frontier.swap(next);
  }
  MG_EXPECTS_MSG(seen == n, "bfs_tree requires a connected graph");
  MG_OBS_ADD("tree.bfs_edge_visits", edge_visits);
  MG_OBS_ADD("tree.bfs_runs", 1);
  return RootedTree::from_parents(root, std::move(parent));
}

RootedTree min_depth_spanning_tree(const Graph& g, ThreadPool* pool,
                                   const graph::CenterOptions& center) {
  MG_OBS_SCOPE_TIMER(build_timer, "tree.min_depth_build_ns");
  MG_OBS_SPAN(build_span, "tree.min_depth_spanning_tree");
  MG_OBS_ADD("tree.min_depth_builds", 1);
  graph::CenterResult found;
  {
    MG_OBS_SCOPE_TIMER(center_timer, "tree.center_scan_ns");
    MG_OBS_SPAN(center_span, "tree.center_scan");
    found = graph::find_center(g, pool, center);
  }
  MG_OBS_ADD("tree.center_scan_pruned", found.pruned);
  MG_OBS_ADD("tree.center_scan_bfs", found.bfs_runs);
  RootedTree t = bfs_tree(g, found.center);
  MG_ENSURES(t.height() == found.radius);
  return t;
}

RootedTree min_depth_spanning_tree(const Graph& g, ThreadPool* pool) {
  return min_depth_spanning_tree(g, pool, graph::CenterOptions{});
}

RootedTree root_tree_graph(const Graph& g, Vertex root) {
  MG_EXPECTS_MSG(graph::is_tree(g), "root_tree_graph requires a tree");
  return bfs_tree(g, root);
}

}  // namespace mg::tree
