// Deterministic, fast pseudo-random number generation for workload
// generators and property tests.  Implements xoshiro256** seeded through
// SplitMix64 so a single 64-bit seed reproduces every workload exactly.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/contracts.h"

namespace mg {

/// xoshiro256** 1.0 (Blackman & Vigna).  Satisfies the C++ named
/// requirement UniformRandomBitGenerator, so it composes with <random>
/// distributions, but the members below avoid distribution overhead for the
/// hot paths used by the graph generators.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = split_mix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased).  Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    MG_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    MG_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t split_mix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mg
